// Package seglog implements the system's write path: a WAL-backed,
// segmented transaction log. Appends go to a single active segment file as
// CRC-framed batches and are fsynced before they are acknowledged; Seal
// turns the active segment into an immutable, manifest-listed segment and
// opens a fresh one; Compact merges runs of small sealed segments. The
// manifest is replaced atomically (internal/atomicio), so a crash at any
// point leaves the log recoverable: sealed data is never touched, and the
// active segment is truncated at the first torn frame — which by the
// fsync-before-ack contract can only contain unacknowledged transactions.
//
// Sealed segments double as the partitions of the paper's Partition
// algorithm: internal/incr mines each sealed segment locally and caches the
// per-segment counts, which is what makes incremental re-mining scan only
// the segments that are new since the last refresh.
package seglog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// Failpoints (see internal/fault). PointAppend is evaluated at the start of
// every Append and again between the frame write and the fsync (a panic
// there models a process killed after the bytes landed but before the
// acknowledgement). PointSeal and PointCompact are evaluated at entry and
// again just before the manifest swap, bracketing the window where a kill
// leaves on-disk state ahead of the manifest.
const (
	PointAppend  = "seglog.append"
	PointSeal    = "seglog.seal"
	PointCompact = "seglog.compact"
)

// DefaultCompactUnder is the sealed-segment size below which Compact
// considers a segment small when Options.CompactUnder is zero.
const DefaultCompactUnder = 1 << 20

// Options configures a Log.
type Options struct {
	// SealBytes automatically seals the active segment when its file grows
	// past this many bytes (0 = no size-based sealing).
	SealBytes int64
	// SealTxns automatically seals the active segment when it holds at
	// least this many transactions (0 = no count-based sealing).
	SealTxns int
	// CompactUnder marks sealed segments smaller than this many bytes as
	// compaction candidates (0 = DefaultCompactUnder).
	CompactUnder int64
	// NoSync skips the fsync on append. Acknowledgements then no longer
	// survive power loss; only benchmarks should set it.
	NoSync bool
	// VerifyOnOpen fully re-reads every sealed segment at Open and checks
	// it against its manifest entry (size, CRC, count, TID range) instead
	// of the default existence + size check.
	VerifyOnOpen bool
}

// Stats is a point-in-time summary of a Log, exported by negmined's
// /metrics ingest block.
type Stats struct {
	Segments      int   // sealed segments
	SealedBytes   int64 // bytes across sealed segment files
	SealedTxns    int   // transactions in sealed segments
	ActiveTxns    int   // transactions in the active segment
	ActiveBytes   int64 // bytes in the active segment file
	NextTID       int64 // TID the next appended transaction gets
	TxnsAppended  int64 // transactions appended since Open
	Seals         int64 // seals since Open
	Compactions   int64 // compactions since Open
	RecoveredDrop int64 // torn-tail bytes discarded during Open
}

// SegmentView is a read-only handle on one sealed segment: its manifest
// entry plus a txdb.DB that re-reads the immutable file on every scan.
type SegmentView struct {
	Entry SegmentEntry
	DB    txdb.DB
}

// Log is a segmented transaction log rooted at a directory. All methods are
// safe for concurrent use; reads (Scan, SealedViews) never block appends
// for longer than a state snapshot.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	man       manifest
	active    activeSegment
	nextTID   int64
	appended  int64
	seals     int64
	compacts  int64
	recovered int64 // torn bytes dropped at Open
	broken    error // set when on-disk and in-memory state may disagree
}

// activeSegment is the in-memory state of the appendable segment.
type activeSegment struct {
	id     int64
	f      *os.File
	size   int64
	txns   int
	minTID int64
	enc    txdb.Encoder
	// txs mirrors the file's content. Readers copy the slice header under
	// the log lock and iterate without it: elements once appended are never
	// mutated, so a concurrent append (even one that reallocates) cannot
	// disturb a reader's view.
	txs []txdb.Transaction
}

// Open opens (or initializes) the segment log in dir, recovering from any
// previous crash: the manifest names the surviving segments, orphan files
// from killed seals/compactions are removed, and the active segment is
// truncated at the first torn frame.
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	man, err := loadManifest(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		man = &manifest{Version: manifestVersion, NextID: 2, Active: 1}
		if err := storeManifest(dir, man); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	}
	l.man = *man

	if err := l.removeOrphans(); err != nil {
		return nil, err
	}
	maxTID := int64(0)
	for _, e := range l.man.Sealed {
		check := statSegment
		if opt.VerifyOnOpen {
			check = verifySegment
		}
		if err := check(dir, e); err != nil {
			return nil, err
		}
		if e.MaxTID > maxTID {
			maxTID = e.MaxTID
		}
	}
	if err := l.recoverActive(); err != nil {
		return nil, err
	}
	if last := l.active.enc.LastTID(); last > maxTID {
		maxTID = last
	}
	l.nextTID = maxTID + 1
	return l, nil
}

// removeOrphans deletes segment files the manifest does not reference —
// leftovers of a seal or compaction killed before its manifest swap — and
// stray atomicio temp files.
func (l *Log) removeOrphans() error {
	known := map[string]bool{segmentPath(l.dir, l.man.Active): true}
	for _, e := range l.man.Sealed {
		known[segmentPath(l.dir, e.ID)] = true
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(l.dir, name)
		isSeg := strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".nmsl")
		isTmp := strings.Contains(name, ".tmp-")
		if (isSeg && !known[path]) || isTmp {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverActive opens the active segment file, truncating any torn tail,
// and rebuilds the in-memory mirror and encoder state.
func (l *Log) recoverActive() error {
	path := segmentPath(l.dir, l.man.Active)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return err
	}
	rec, err := recoverActiveBytes(raw, path)
	if err != nil {
		f.Close()
		return err
	}
	if rec.size == 0 {
		// Empty or torn-header file: (re)write the header.
		hdr := segmentHeader()
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(hdr, 0)
		}
		if err == nil && !l.opt.NoSync {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return err
		}
		rec.size = int64(len(hdr))
	} else if int64(len(raw)) != rec.size {
		if err := f.Truncate(rec.size); err != nil {
			f.Close()
			return err
		}
		if !l.opt.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
		}
	}
	l.active = activeSegment{
		id:     l.man.Active,
		f:      f,
		size:   rec.size,
		txns:   len(rec.txs),
		minTID: rec.minTID,
		txs:    rec.txs,
	}
	if len(rec.txs) > 0 {
		l.active.enc.ResumeAt(rec.maxTID)
	}
	l.recovered += rec.dropped
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment file. The log must not be
// used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active.f == nil {
		return nil
	}
	var err error
	if !l.opt.NoSync {
		err = l.active.f.Sync()
	}
	if cerr := l.active.f.Close(); err == nil {
		err = cerr
	}
	l.active.f = nil
	return err
}

// Append atomically appends a batch of baskets as one durable frame,
// assigning consecutive TIDs. It returns the first and last TID assigned
// once the frame is fsynced — an Append that returned is an Append that
// survives a crash. Empty batches are rejected; itemsets must be valid
// (sorted, unique, non-negative).
func (l *Log) Append(baskets []item.Itemset) (first, last int64, err error) {
	if len(baskets) == 0 {
		return 0, 0, fmt.Errorf("seglog: empty batch")
	}
	for i, s := range baskets {
		if err := s.Validate(); err != nil {
			return 0, 0, fmt.Errorf("seglog: basket %d: %w", i, err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, 0, fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	if err := fault.Hit(PointAppend); err != nil {
		return 0, 0, fmt.Errorf("seglog: %w", err)
	}

	// Encode against a scratch copy of the encoder so a failed write leaves
	// the committed stream state untouched.
	enc := l.active.enc
	first = l.nextTID
	txs := make([]txdb.Transaction, len(baskets))
	var payload []byte
	for i, s := range baskets {
		tx := txdb.Transaction{TID: l.nextTID + int64(i), Items: s.Clone()}
		txs[i] = tx
		if payload, err = enc.AppendRecord(payload, tx); err != nil {
			return 0, 0, err
		}
	}
	last = first + int64(len(baskets)) - 1
	if len(payload) > maxFramePayload {
		return 0, 0, fmt.Errorf("seglog: batch encodes to %d bytes, above the %d frame bound — split it", len(payload), maxFramePayload)
	}

	fr := frame(payload)
	startSize := l.active.size
	undo := func(werr error) (int64, int64, error) {
		// Claw back partially written bytes so in-memory and on-disk state
		// agree; if even that fails the log refuses further writes.
		if terr := l.active.f.Truncate(startSize); terr != nil {
			l.broken = terr
		}
		return 0, 0, werr
	}
	// Two writes with the failpoint between them: a panic (kill) on the
	// second evaluation leaves a torn frame on disk, exactly what a crash
	// mid-append produces. Nothing has been acknowledged at that point.
	half := len(fr) / 2
	if _, err := l.active.f.WriteAt(fr[:half], startSize); err != nil {
		return undo(err)
	}
	if err := fault.Hit(PointAppend); err != nil {
		return undo(fmt.Errorf("seglog: %w", err))
	}
	if _, err := l.active.f.WriteAt(fr[half:], startSize+int64(half)); err != nil {
		return undo(err)
	}
	if !l.opt.NoSync {
		if err := l.active.f.Sync(); err != nil {
			return undo(err)
		}
	}

	// Durable: commit the in-memory state and acknowledge.
	l.active.enc = enc
	l.active.size += int64(len(fr))
	l.active.txns += len(txs)
	if l.active.minTID == 0 {
		l.active.minTID = first
	}
	l.active.txs = append(l.active.txs, txs...)
	l.nextTID = last + 1
	l.appended += int64(len(txs))

	if (l.opt.SealBytes > 0 && l.active.size >= l.opt.SealBytes) ||
		(l.opt.SealTxns > 0 && l.active.txns >= l.opt.SealTxns) {
		if err := l.sealLocked(); err != nil {
			// The append itself is durable; surface the seal failure without
			// retracting the acknowledgement.
			return first, last, fmt.Errorf("seglog: auto-seal: %w", err)
		}
	}
	return first, last, nil
}

// Seal makes the active segment immutable and opens a fresh one. Sealing an
// empty active segment is a no-op. The on-disk order is: fsync the segment,
// commit the manifest, create the new active file — a crash between any two
// steps recovers to a consistent log with nothing lost.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealLocked()
}

func (l *Log) sealLocked() error {
	if l.broken != nil {
		return fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	if l.active.txns == 0 {
		return nil
	}
	if err := fault.Hit(PointSeal); err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	if err := l.active.f.Sync(); err != nil {
		return err
	}
	crc, err := fileCRC(segmentPath(l.dir, l.active.id), l.active.size)
	if err != nil {
		return err
	}
	entry := SegmentEntry{
		ID:     l.active.id,
		Txns:   l.active.txns,
		Bytes:  l.active.size,
		CRC:    crc,
		MinTID: l.active.minTID,
		MaxTID: l.active.enc.LastTID(),
	}
	if err := fault.Hit(PointSeal); err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	next := l.man
	next.Sealed = append(append([]SegmentEntry(nil), l.man.Sealed...), entry)
	next.Active = l.man.NextID
	next.NextID = l.man.NextID + 1
	if err := storeManifest(l.dir, &next); err != nil {
		return err
	}
	// Manifest committed: the old active segment is sealed no matter what
	// happens from here on. Swap in a fresh active segment.
	if err := l.active.f.Close(); err != nil {
		l.broken = err
		return err
	}
	l.man = next
	l.seals++
	f, err := os.OpenFile(segmentPath(l.dir, next.Active), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.broken = err
		return err
	}
	hdr := segmentHeader()
	if _, err := f.WriteAt(hdr, 0); err != nil {
		l.broken = err
		return err
	}
	if !l.opt.NoSync {
		if err := f.Sync(); err != nil {
			l.broken = err
			return err
		}
	}
	l.active = activeSegment{id: next.Active, f: f, size: int64(len(hdr))}
	return nil
}

// Compact merges the first run of at least two adjacent sealed segments
// that are each smaller than Options.CompactUnder into one new segment,
// preserving scan order. It reports whether a merge happened. The merged
// file is written and fsynced before the manifest swap; a kill in between
// leaves an orphan the next Open removes.
func (l *Log) Compact() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return false, fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	threshold := l.opt.CompactUnder
	if threshold <= 0 {
		threshold = DefaultCompactUnder
	}
	runStart, runEnd := -1, -1
	for i, e := range l.man.Sealed {
		if e.Bytes < threshold {
			if runStart < 0 {
				runStart = i
			}
			runEnd = i + 1
		} else if runEnd-runStart >= 2 {
			break
		} else {
			runStart, runEnd = -1, -1
		}
	}
	if runStart < 0 || runEnd-runStart < 2 {
		return false, nil
	}
	if err := fault.Hit(PointCompact); err != nil {
		return false, fmt.Errorf("seglog: %w", err)
	}
	run := l.man.Sealed[runStart:runEnd]
	merged, err := l.writeMerged(l.man.NextID, run)
	if err != nil {
		return false, err
	}
	if err := fault.Hit(PointCompact); err != nil {
		return false, fmt.Errorf("seglog: %w", err)
	}
	next := l.man
	next.Sealed = make([]SegmentEntry, 0, len(l.man.Sealed)-len(run)+1)
	next.Sealed = append(next.Sealed, l.man.Sealed[:runStart]...)
	next.Sealed = append(next.Sealed, merged)
	next.Sealed = append(next.Sealed, l.man.Sealed[runEnd:]...)
	next.NextID = l.man.NextID + 1
	if err := storeManifest(l.dir, &next); err != nil {
		return false, err
	}
	l.man = next
	l.compacts++
	for _, e := range run {
		_ = os.Remove(segmentPath(l.dir, e.ID)) // best-effort; Open reaps leftovers
	}
	return true, nil
}

// writeMerged streams the run's transactions into a new sealed segment file
// and returns its manifest entry.
func (l *Log) writeMerged(id int64, run []SegmentEntry) (SegmentEntry, error) {
	path := segmentPath(l.dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SegmentEntry{}, err
	}
	defer f.Close()
	hdr := segmentHeader()
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return SegmentEntry{}, err
	}
	size := int64(len(hdr))
	var enc txdb.Encoder
	var payload []byte
	const flushAt = 256 << 10
	flush := func() error {
		if len(payload) == 0 {
			return nil
		}
		fr := frame(payload)
		if _, err := f.WriteAt(fr, size); err != nil {
			return err
		}
		size += int64(len(fr))
		payload = payload[:0]
		return nil
	}
	txns := 0
	for _, e := range run {
		src := &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}
		err := src.Scan(func(tx txdb.Transaction) error {
			var err error
			if payload, err = enc.AppendRecord(payload, tx); err != nil {
				return err
			}
			txns++
			if len(payload) >= flushAt {
				return flush()
			}
			return nil
		})
		if err != nil {
			return SegmentEntry{}, err
		}
	}
	if err := flush(); err != nil {
		return SegmentEntry{}, err
	}
	if err := f.Sync(); err != nil {
		return SegmentEntry{}, err
	}
	crc, err := fileCRC(path, size)
	if err != nil {
		return SegmentEntry{}, err
	}
	return SegmentEntry{
		ID:     id,
		Txns:   txns,
		Bytes:  size,
		CRC:    crc,
		MinTID: run[0].MinTID,
		MaxTID: run[len(run)-1].MaxTID,
	}, nil
}

// SealedViews returns read-only handles on the sealed segments in scan
// order. The views stay valid until the segments they name are compacted
// away.
func (l *Log) SealedViews() []SegmentView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := make([]SegmentView, len(l.man.Sealed))
	for i, e := range l.man.Sealed {
		views[i] = SegmentView{Entry: e, DB: &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}}
	}
	return views
}

// Count returns the total number of transactions (sealed + active).
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.active.txns
	for _, e := range l.man.Sealed {
		n += e.Txns
	}
	return n
}

// Scan streams every transaction — sealed segments in manifest order, then
// the active segment — satisfying txdb.DB. The view is the log state at
// call time; concurrent appends are not observed mid-scan.
func (l *Log) Scan(fn func(txdb.Transaction) error) error {
	l.mu.Lock()
	sealed := append([]SegmentEntry(nil), l.man.Sealed...)
	activeTxs := l.active.txs
	l.mu.Unlock()
	for _, e := range sealed {
		db := &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}
		if err := db.Scan(fn); err != nil {
			return err
		}
	}
	for _, tx := range activeTxs {
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// ActiveTransactions returns the active segment's transactions. The slice
// and its elements are shared and must not be modified.
func (l *Log) ActiveTransactions() []txdb.Transaction {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active.txs
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:      len(l.man.Sealed),
		ActiveTxns:    l.active.txns,
		ActiveBytes:   l.active.size,
		NextTID:       l.nextTID,
		TxnsAppended:  l.appended,
		Seals:         l.seals,
		Compactions:   l.compacts,
		RecoveredDrop: l.recovered,
	}
	for _, e := range l.man.Sealed {
		st.SealedBytes += e.Bytes
		st.SealedTxns += e.Txns
	}
	return st
}

// fileCRC computes the crc32c of the first size bytes of path.
func fileCRC(path string, size int64) (uint32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if int64(len(raw)) < size {
		return 0, fmt.Errorf("seglog: %s: %d bytes on disk, expected at least %d", path, len(raw), size)
	}
	return crc32.Checksum(raw[:size], crcTable), nil
}
