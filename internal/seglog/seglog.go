// Package seglog implements the system's write path: a WAL-backed,
// segmented transaction log. Appends go to a single active segment file as
// CRC-framed batches and are fsynced before they are acknowledged; Seal
// turns the active segment into an immutable, manifest-listed segment and
// opens a fresh one; Compact merges runs of small sealed segments. The
// manifest is replaced atomically (internal/atomicio), so a crash at any
// point leaves the log recoverable: sealed data is never touched, and the
// active segment is truncated at the first torn frame — which by the
// fsync-before-ack contract can only contain unacknowledged transactions.
//
// Sealed segments double as the partitions of the paper's Partition
// algorithm: internal/incr mines each sealed segment locally and caches the
// per-segment counts, which is what makes incremental re-mining scan only
// the segments that are new since the last refresh.
package seglog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"negmine/internal/atomicio"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/txdb"
)

// Failpoints (see internal/fault). PointAppend is evaluated at the start of
// every Append and again between the frame write and the fsync (a panic
// there models a process killed after the bytes landed but before the
// acknowledgement). PointSeal and PointCompact are evaluated at entry and
// again just before the manifest swap, bracketing the window where a kill
// leaves on-disk state ahead of the manifest.
const (
	PointAppend  = "seglog.append"
	PointSeal    = "seglog.seal"
	PointCompact = "seglog.compact"
	// PointFence is evaluated inside every epoch-checked append, before the
	// epoch comparison; arming it with an error makes the append behave as if
	// the writer had been fenced.
	PointFence = "seglog.fence"
	// PointReplicate is evaluated once per sealed segment a Shipper is about
	// to publish to the replication store (see replicate.go).
	PointReplicate = "seglog.replicate"
)

// ErrFenced reports an append carrying a stale epoch token: the log has been
// promoted past the writer. The write was rejected and nothing was appended.
var ErrFenced = errors.New("seglog: append fenced (stale epoch)")

// ErrStaleSeq reports a keyed append whose sequence number is at or below one
// already retired for that idempotency key (and is not the retained duplicate
// window entry): the client has moved past it, so replaying it would reorder
// history.
var ErrStaleSeq = errors.New("seglog: stale sequence for idempotency key")

// ErrOutOfSync reports a replicated append or segment adoption that does not
// continue the log's TID sequence exactly.
var ErrOutOfSync = errors.New("seglog: replica out of sync with primary stream")

// DefaultCompactUnder is the sealed-segment size below which Compact
// considers a segment small when Options.CompactUnder is zero.
const DefaultCompactUnder = 1 << 20

// Options configures a Log.
type Options struct {
	// SealBytes automatically seals the active segment when its file grows
	// past this many bytes (0 = no size-based sealing).
	SealBytes int64
	// SealTxns automatically seals the active segment when it holds at
	// least this many transactions (0 = no count-based sealing).
	SealTxns int
	// CompactUnder marks sealed segments smaller than this many bytes as
	// compaction candidates (0 = DefaultCompactUnder).
	CompactUnder int64
	// NoSync skips the fsync on append. Acknowledgements then no longer
	// survive power loss; only benchmarks should set it.
	NoSync bool
	// VerifyOnOpen fully re-reads every sealed segment at Open and checks
	// it against its manifest entry (size, CRC, count, TID range) instead
	// of the default existence + size check.
	VerifyOnOpen bool
	// DedupWindow bounds the number of (key, seq) idempotency entries the
	// log retains for exactly-once keyed appends (see Batch.Key); 0 disables
	// deduplication. Entries are evicted FIFO, so exactly-once only holds
	// for retries arriving within the window's retention horizon.
	DedupWindow int
}

// Stats is a point-in-time summary of a Log, exported by negmined's
// /metrics ingest block.
type Stats struct {
	Segments      int   // sealed segments
	SealedBytes   int64 // bytes across sealed segment files
	SealedTxns    int   // transactions in sealed segments
	ActiveTxns    int   // transactions in the active segment
	ActiveBytes   int64 // bytes in the active segment file
	NextTID       int64 // TID the next appended transaction gets
	TxnsAppended  int64 // transactions appended since Open
	Seals         int64 // seals since Open
	Compactions   int64 // compactions since Open
	RecoveredDrop int64 // torn-tail bytes discarded during Open
	Epoch         int64 // current fencing epoch
	FencedAppends int64 // appends rejected with ErrFenced since Open
	DedupHits     int64 // keyed appends answered from the dedup window
	DedupEntries  int   // live entries in the dedup window
}

// SegmentView is a read-only handle on one sealed segment: its manifest
// entry plus a txdb.DB that re-reads the immutable file on every scan.
type SegmentView struct {
	Entry SegmentEntry
	DB    txdb.DB
}

// Log is a segmented transaction log rooted at a directory. All methods are
// safe for concurrent use; reads (Scan, SealedViews) never block appends
// for longer than a state snapshot.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	man       manifest
	active    activeSegment
	nextTID   int64
	appended  int64
	seals     int64
	compacts  int64
	recovered int64 // torn bytes dropped at Open
	fenced    int64 // appends rejected with ErrFenced
	dedupHits int64 // keyed appends answered from the window
	broken    error // set when on-disk and in-memory state may disagree

	window *dedupWindow // nil when Options.DedupWindow == 0

	// notifyCh is closed and replaced on every durable append, waking tail
	// followers blocked in a long poll. Guarded by mu.
	notifyCh chan struct{}
}

// activeSegment is the in-memory state of the appendable segment.
type activeSegment struct {
	id     int64
	f      *os.File
	size   int64
	txns   int
	minTID int64
	enc    txdb.Encoder
	// txs mirrors the file's content. Readers copy the slice header under
	// the log lock and iterate without it: elements once appended are never
	// mutated, so a concurrent append (even one that reallocates) cannot
	// disturb a reader's view.
	txs []txdb.Transaction
}

// Open opens (or initializes) the segment log in dir, recovering from any
// previous crash: the manifest names the surviving segments, orphan files
// from killed seals/compactions are removed, and the active segment is
// truncated at the first torn frame.
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	man, err := loadManifest(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		man = &manifest{Version: manifestVersion, NextID: 2, Active: 1}
		if err := storeManifest(dir, man); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	}
	l.man = *man

	if err := l.removeOrphans(); err != nil {
		return nil, err
	}
	maxTID := int64(0)
	for _, e := range l.man.Sealed {
		check := statSegment
		if opt.VerifyOnOpen {
			check = verifySegment
		}
		if err := check(dir, e); err != nil {
			return nil, err
		}
		if e.MaxTID > maxTID {
			maxTID = e.MaxTID
		}
	}
	if err := l.recoverActive(); err != nil {
		return nil, err
	}
	if last := l.active.enc.LastTID(); last > maxTID {
		maxTID = last
	}
	l.nextTID = maxTID + 1
	l.notifyCh = make(chan struct{})
	if opt.DedupWindow > 0 {
		w, err := openDedupWindow(dir, opt.DedupWindow, l.nextTID, opt.NoSync)
		if err != nil {
			return nil, err
		}
		l.window = w
	}
	return l, nil
}

// removeOrphans deletes segment files the manifest does not reference —
// leftovers of a seal or compaction killed before its manifest swap — and
// stray atomicio temp files.
func (l *Log) removeOrphans() error {
	known := map[string]bool{segmentPath(l.dir, l.man.Active): true}
	for _, e := range l.man.Sealed {
		known[segmentPath(l.dir, e.ID)] = true
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(l.dir, name)
		isSeg := strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".nmsl")
		isTmp := strings.Contains(name, ".tmp-")
		if (isSeg && !known[path]) || isTmp {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// recoverActive opens the active segment file, truncating any torn tail,
// and rebuilds the in-memory mirror and encoder state.
func (l *Log) recoverActive() error {
	path := segmentPath(l.dir, l.man.Active)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return err
	}
	rec, err := recoverActiveBytes(raw, path)
	if err != nil {
		f.Close()
		return err
	}
	if rec.size == 0 {
		// Empty or torn-header file: (re)write the header.
		hdr := segmentHeader()
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(hdr, 0)
		}
		if err == nil && !l.opt.NoSync {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return err
		}
		rec.size = int64(len(hdr))
	} else if int64(len(raw)) != rec.size {
		if err := f.Truncate(rec.size); err != nil {
			f.Close()
			return err
		}
		if !l.opt.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
		}
	}
	l.active = activeSegment{
		id:     l.man.Active,
		f:      f,
		size:   rec.size,
		txns:   len(rec.txs),
		minTID: rec.minTID,
		txs:    rec.txs,
	}
	if len(rec.txs) > 0 {
		l.active.enc.ResumeAt(rec.maxTID)
	}
	l.recovered += rec.dropped
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment file. The log must not be
// used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active.f == nil {
		return nil
	}
	var err error
	if !l.opt.NoSync {
		err = l.active.f.Sync()
	}
	if cerr := l.active.f.Close(); err == nil {
		err = cerr
	}
	l.active.f = nil
	if l.window != nil {
		if cerr := l.window.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Batch is one atomic append request. The zero value of the optional fields
// means "plain append": no epoch check, no deduplication.
type Batch struct {
	// Baskets are the itemsets to append, one transaction each. Must be
	// non-empty; itemsets must be valid (sorted, unique, non-negative).
	Baskets []item.Itemset
	// Epoch, when >= 0, is the fencing token the writer believes it holds;
	// the append is rejected with ErrFenced unless it equals the log's
	// current epoch. Epoch < 0 skips the check (single-writer deployments).
	Epoch int64
	// Key, when non-empty, is the client's idempotency key: a retry of an
	// already-applied (Key, Seq) returns the original TID range with
	// Duplicate set instead of appending again. Requires Options.DedupWindow.
	Key string
	// Seq orders batches under one Key. A retry must reuse the original Seq.
	Seq uint64
}

// AppendResult is the acknowledgement of an AppendBatch.
type AppendResult struct {
	First, Last int64 // assigned TID range (inclusive)
	Duplicate   bool  // true when answered from the dedup window, nothing appended
}

// Append atomically appends a batch of baskets as one durable frame,
// assigning consecutive TIDs. It returns the first and last TID assigned
// once the frame is fsynced — an Append that returned is an Append that
// survives a crash. Empty batches are rejected; itemsets must be valid
// (sorted, unique, non-negative).
func (l *Log) Append(baskets []item.Itemset) (first, last int64, err error) {
	res, err := l.AppendBatch(Batch{Baskets: baskets, Epoch: -1})
	return res.First, res.Last, err
}

// AppendBatch is Append with fencing and exactly-once semantics: the batch
// is rejected when its epoch token is stale, and — when it carries an
// idempotency key — a retry of an already-durable batch is answered from the
// dedup window without appending anything.
func (l *Log) AppendBatch(b Batch) (AppendResult, error) {
	if len(b.Baskets) == 0 {
		return AppendResult{}, fmt.Errorf("seglog: empty batch")
	}
	for i, s := range b.Baskets {
		if err := s.Validate(); err != nil {
			return AppendResult{}, fmt.Errorf("seglog: basket %d: %w", i, err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return AppendResult{}, fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	if b.Epoch >= 0 {
		if err := fault.Hit(PointFence); err != nil {
			l.fenced++
			return AppendResult{}, fmt.Errorf("%w: %v", ErrFenced, err)
		}
		if b.Epoch != l.man.Epoch {
			l.fenced++
			return AppendResult{}, fmt.Errorf("%w: writer epoch %d, log epoch %d", ErrFenced, b.Epoch, l.man.Epoch)
		}
	}
	if err := fault.Hit(PointAppend); err != nil {
		return AppendResult{}, fmt.Errorf("seglog: %w", err)
	}

	first := l.nextTID
	last := first + int64(len(b.Baskets)) - 1
	if b.Key != "" && l.window != nil {
		switch e, state := l.window.lookup(b.Key, b.Seq); state {
		case dedupDuplicate:
			l.dedupHits++
			return AppendResult{First: e.First, Last: e.Last, Duplicate: true}, nil
		case dedupStale:
			return AppendResult{}, fmt.Errorf("%w: key %q seq %d", ErrStaleSeq, b.Key, b.Seq)
		}
		// Fresh: reserve the entry durably *before* the data append. Recovery
		// drops reservations whose TID range did not make it into the log, so
		// a crash anywhere in this sequence keeps journal and log agreeing.
		if err := l.window.reserve(dedupEntry{Key: b.Key, Seq: b.Seq, First: first, Last: last, Txns: len(b.Baskets)}); err != nil {
			return AppendResult{}, err
		}
	}

	txs := make([]txdb.Transaction, len(b.Baskets))
	for i, s := range b.Baskets {
		txs[i] = txdb.Transaction{TID: first + int64(i), Items: s.Clone()}
	}
	if err := l.appendTxsLocked(txs); err != nil {
		if b.Key != "" && l.window != nil {
			// The reservation must not survive a failed append: a later batch
			// may reuse the TID range. If even the cancel cannot be made
			// durable, stop the log — better unavailable than duplicated.
			if cerr := l.window.cancel(b.Key, b.Seq); cerr != nil {
				l.broken = cerr
			}
		}
		return AppendResult{}, err
	}
	if b.Key != "" && l.window != nil {
		l.window.commit(dedupEntry{Key: b.Key, Seq: b.Seq, First: first, Last: last, Txns: len(txs)})
	}
	return AppendResult{First: first, Last: last}, l.postAppendLocked(first, last)
}

// appendTxsLocked writes txs (whose TIDs must continue the log exactly) as
// one durable frame. It neither assigns TIDs nor touches nextTID bookkeeping
// beyond the active-segment state; callers follow up with postAppendLocked.
func (l *Log) appendTxsLocked(txs []txdb.Transaction) error {
	// Encode against a scratch copy of the encoder so a failed write leaves
	// the committed stream state untouched.
	enc := l.active.enc
	var payload []byte
	var err error
	for _, tx := range txs {
		if payload, err = enc.AppendRecord(payload, tx); err != nil {
			return err
		}
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("seglog: batch encodes to %d bytes, above the %d frame bound — split it", len(payload), maxFramePayload)
	}

	fr := frame(payload)
	startSize := l.active.size
	undo := func(werr error) error {
		// Claw back partially written bytes so in-memory and on-disk state
		// agree; if even that fails the log refuses further writes.
		if terr := l.active.f.Truncate(startSize); terr != nil {
			l.broken = terr
		}
		return werr
	}
	// Two writes with the failpoint between them: a panic (kill) on the
	// second evaluation leaves a torn frame on disk, exactly what a crash
	// mid-append produces. Nothing has been acknowledged at that point.
	half := len(fr) / 2
	if _, err := l.active.f.WriteAt(fr[:half], startSize); err != nil {
		return undo(err)
	}
	if err := fault.Hit(PointAppend); err != nil {
		return undo(fmt.Errorf("seglog: %w", err))
	}
	if _, err := l.active.f.WriteAt(fr[half:], startSize+int64(half)); err != nil {
		return undo(err)
	}
	if !l.opt.NoSync {
		if err := l.active.f.Sync(); err != nil {
			return undo(err)
		}
	}

	// Durable: commit the in-memory state.
	l.active.enc = enc
	l.active.size += int64(len(fr))
	l.active.txns += len(txs)
	if l.active.minTID == 0 {
		l.active.minTID = txs[0].TID
	}
	l.active.txs = append(l.active.txs, txs...)
	return nil
}

// postAppendLocked finishes a durable append: advances the TID cursor, wakes
// tail followers, and runs the auto-seal policy. A seal failure is surfaced
// without retracting the acknowledgement (the append itself is durable).
func (l *Log) postAppendLocked(first, last int64) error {
	l.nextTID = last + 1
	l.appended += last - first + 1
	close(l.notifyCh)
	l.notifyCh = make(chan struct{})

	if (l.opt.SealBytes > 0 && l.active.size >= l.opt.SealBytes) ||
		(l.opt.SealTxns > 0 && l.active.txns >= l.opt.SealTxns) {
		if err := l.sealLocked(); err != nil {
			return fmt.Errorf("seglog: auto-seal: %w", err)
		}
	}
	return nil
}

// AppendReplicated appends transactions received from a primary's tail
// stream, preserving their TIDs exactly. The batch must continue the log's
// TID sequence with no gap (ErrOutOfSync otherwise); items are trusted as
// already validated by the primary. Used by the standby only — a log taking
// replicated appends must not take client appends.
func (l *Log) AppendReplicated(txs []txdb.Transaction) (AppendResult, error) {
	if len(txs) == 0 {
		return AppendResult{}, fmt.Errorf("seglog: empty replicated batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return AppendResult{}, fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	first, last := txs[0].TID, txs[len(txs)-1].TID
	if first != l.nextTID {
		return AppendResult{}, fmt.Errorf("%w: replicated batch starts at TID %d, log expects %d", ErrOutOfSync, first, l.nextTID)
	}
	for i, tx := range txs {
		if tx.TID != first+int64(i) {
			return AppendResult{}, fmt.Errorf("%w: replicated batch has non-consecutive TID %d at index %d", ErrOutOfSync, tx.TID, i)
		}
	}
	if err := fault.Hit(PointAppend); err != nil {
		return AppendResult{}, fmt.Errorf("seglog: %w", err)
	}
	if err := l.appendTxsLocked(txs); err != nil {
		return AppendResult{}, err
	}
	return AppendResult{First: first, Last: last}, l.postAppendLocked(first, last)
}

// Seal makes the active segment immutable and opens a fresh one. Sealing an
// empty active segment is a no-op. The on-disk order is: fsync the segment,
// commit the manifest, create the new active file — a crash between any two
// steps recovers to a consistent log with nothing lost.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealLocked()
}

func (l *Log) sealLocked() error {
	if l.broken != nil {
		return fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	if l.active.txns == 0 {
		return nil
	}
	if err := fault.Hit(PointSeal); err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	if err := l.active.f.Sync(); err != nil {
		return err
	}
	crc, err := fileCRC(segmentPath(l.dir, l.active.id), l.active.size)
	if err != nil {
		return err
	}
	entry := SegmentEntry{
		ID:     l.active.id,
		Txns:   l.active.txns,
		Bytes:  l.active.size,
		CRC:    crc,
		MinTID: l.active.minTID,
		MaxTID: l.active.enc.LastTID(),
	}
	if err := fault.Hit(PointSeal); err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	next := l.man
	next.Sealed = append(append([]SegmentEntry(nil), l.man.Sealed...), entry)
	next.Active = l.man.NextID
	next.NextID = l.man.NextID + 1
	if err := storeManifest(l.dir, &next); err != nil {
		return err
	}
	// Manifest committed: the old active segment is sealed no matter what
	// happens from here on. Swap in a fresh active segment.
	if err := l.active.f.Close(); err != nil {
		l.broken = err
		return err
	}
	l.man = next
	l.seals++
	f, err := os.OpenFile(segmentPath(l.dir, next.Active), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.broken = err
		return err
	}
	hdr := segmentHeader()
	if _, err := f.WriteAt(hdr, 0); err != nil {
		l.broken = err
		return err
	}
	if !l.opt.NoSync {
		if err := f.Sync(); err != nil {
			l.broken = err
			return err
		}
	}
	l.active = activeSegment{id: next.Active, f: f, size: int64(len(hdr))}
	return nil
}

// Compact merges the first run of at least two adjacent sealed segments
// that are each smaller than Options.CompactUnder into one new segment,
// preserving scan order. It reports whether a merge happened. The merged
// file is written and fsynced before the manifest swap; a kill in between
// leaves an orphan the next Open removes.
func (l *Log) Compact() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return false, fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	threshold := l.opt.CompactUnder
	if threshold <= 0 {
		threshold = DefaultCompactUnder
	}
	runStart, runEnd := -1, -1
	for i, e := range l.man.Sealed {
		if e.Bytes < threshold {
			if runStart < 0 {
				runStart = i
			}
			runEnd = i + 1
		} else if runEnd-runStart >= 2 {
			break
		} else {
			runStart, runEnd = -1, -1
		}
	}
	if runStart < 0 || runEnd-runStart < 2 {
		return false, nil
	}
	if err := fault.Hit(PointCompact); err != nil {
		return false, fmt.Errorf("seglog: %w", err)
	}
	run := l.man.Sealed[runStart:runEnd]
	merged, err := l.writeMerged(l.man.NextID, run)
	if err != nil {
		return false, err
	}
	if err := fault.Hit(PointCompact); err != nil {
		return false, fmt.Errorf("seglog: %w", err)
	}
	next := l.man
	next.Sealed = make([]SegmentEntry, 0, len(l.man.Sealed)-len(run)+1)
	next.Sealed = append(next.Sealed, l.man.Sealed[:runStart]...)
	next.Sealed = append(next.Sealed, merged)
	next.Sealed = append(next.Sealed, l.man.Sealed[runEnd:]...)
	next.NextID = l.man.NextID + 1
	if err := storeManifest(l.dir, &next); err != nil {
		return false, err
	}
	l.man = next
	l.compacts++
	for _, e := range run {
		_ = os.Remove(segmentPath(l.dir, e.ID)) // best-effort; Open reaps leftovers
	}
	return true, nil
}

// writeMerged streams the run's transactions into a new sealed segment file
// and returns its manifest entry.
func (l *Log) writeMerged(id int64, run []SegmentEntry) (SegmentEntry, error) {
	path := segmentPath(l.dir, id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SegmentEntry{}, err
	}
	defer f.Close()
	hdr := segmentHeader()
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return SegmentEntry{}, err
	}
	size := int64(len(hdr))
	var enc txdb.Encoder
	var payload []byte
	const flushAt = 256 << 10
	flush := func() error {
		if len(payload) == 0 {
			return nil
		}
		fr := frame(payload)
		if _, err := f.WriteAt(fr, size); err != nil {
			return err
		}
		size += int64(len(fr))
		payload = payload[:0]
		return nil
	}
	txns := 0
	for _, e := range run {
		src := &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}
		err := src.Scan(func(tx txdb.Transaction) error {
			var err error
			if payload, err = enc.AppendRecord(payload, tx); err != nil {
				return err
			}
			txns++
			if len(payload) >= flushAt {
				return flush()
			}
			return nil
		})
		if err != nil {
			return SegmentEntry{}, err
		}
	}
	if err := flush(); err != nil {
		return SegmentEntry{}, err
	}
	if err := f.Sync(); err != nil {
		return SegmentEntry{}, err
	}
	crc, err := fileCRC(path, size)
	if err != nil {
		return SegmentEntry{}, err
	}
	return SegmentEntry{
		ID:     id,
		Txns:   txns,
		Bytes:  size,
		CRC:    crc,
		MinTID: run[0].MinTID,
		MaxTID: run[len(run)-1].MaxTID,
	}, nil
}

// SealedViews returns read-only handles on the sealed segments in scan
// order. The views stay valid until the segments they name are compacted
// away.
func (l *Log) SealedViews() []SegmentView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := make([]SegmentView, len(l.man.Sealed))
	for i, e := range l.man.Sealed {
		views[i] = SegmentView{Entry: e, DB: &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}}
	}
	return views
}

// Count returns the total number of transactions (sealed + active).
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.active.txns
	for _, e := range l.man.Sealed {
		n += e.Txns
	}
	return n
}

// Scan streams every transaction — sealed segments in manifest order, then
// the active segment — satisfying txdb.DB. The view is the log state at
// call time; concurrent appends are not observed mid-scan.
func (l *Log) Scan(fn func(txdb.Transaction) error) error {
	l.mu.Lock()
	sealed := append([]SegmentEntry(nil), l.man.Sealed...)
	activeTxs := l.active.txs
	l.mu.Unlock()
	for _, e := range sealed {
		db := &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}
		if err := db.Scan(fn); err != nil {
			return err
		}
	}
	for _, tx := range activeTxs {
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// ActiveTransactions returns the active segment's transactions. The slice
// and its elements are shared and must not be modified.
func (l *Log) ActiveTransactions() []txdb.Transaction {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active.txs
}

// ScanFrom streams every transaction with TID > after in TID order, skipping
// whole sealed segments the cursor has passed. Like Scan, the view is the
// log state at call time. fn returning an error stops the scan and returns
// that error.
func (l *Log) ScanFrom(after int64, fn func(txdb.Transaction) error) error {
	l.mu.Lock()
	sealed := append([]SegmentEntry(nil), l.man.Sealed...)
	activeTxs := l.active.txs
	l.mu.Unlock()
	for _, e := range sealed {
		if e.MaxTID <= after {
			continue
		}
		db := &segDB{path: segmentPath(l.dir, e.ID), txns: e.Txns}
		err := db.Scan(func(tx txdb.Transaction) error {
			if tx.TID <= after {
				return nil
			}
			return fn(tx)
		})
		if err != nil {
			return err
		}
	}
	for _, tx := range activeTxs {
		if tx.TID <= after {
			continue
		}
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// NextTID returns the TID the next appended transaction would get.
func (l *Log) NextTID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextTID
}

// Epoch returns the log's current fencing epoch.
func (l *Log) Epoch() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.man.Epoch
}

// AdvanceEpoch durably raises the log's fencing epoch to the given value,
// after which appends carrying any older epoch token fail with ErrFenced.
// The epoch can only move forward; advancing to the current value is a
// no-op, moving backwards an error.
func (l *Log) AdvanceEpoch(to int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	switch {
	case to == l.man.Epoch:
		return nil
	case to < l.man.Epoch:
		return fmt.Errorf("seglog: cannot lower epoch %d to %d", l.man.Epoch, to)
	}
	next := l.man
	next.Epoch = to
	if err := storeManifest(l.dir, &next); err != nil {
		return err
	}
	l.man = next
	return nil
}

// AppendNotify returns a channel that is closed when the next append lands,
// the building block of the tail endpoint's long poll. Callers must obtain
// the channel *before* checking for new data.
func (l *Log) AppendNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notifyCh
}

// SealedEntries returns a copy of the manifest's sealed-segment list in scan
// order.
func (l *Log) SealedEntries() []SegmentEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SegmentEntry(nil), l.man.Sealed...)
}

// ReadSealed returns the raw file bytes of one sealed segment, verified
// against its manifest entry — the payload a Shipper replicates.
func (l *Log) ReadSealed(e SegmentEntry) ([]byte, error) {
	raw, err := os.ReadFile(segmentPath(l.dir, e.ID))
	if err != nil {
		return nil, err
	}
	if int64(len(raw)) != e.Bytes {
		return nil, fmt.Errorf("seglog: segment %d: %d bytes on disk, manifest says %d", e.ID, len(raw), e.Bytes)
	}
	if crc := crc32.Checksum(raw, crcTable); crc != e.CRC {
		return nil, fmt.Errorf("seglog: segment %d: CRC %08x, manifest says %08x", e.ID, crc, e.CRC)
	}
	return raw, nil
}

// AdoptSealed installs a replicated sealed segment (its primary-side
// manifest entry plus raw file bytes) into this log. The segment must
// continue the log's TID sequence exactly: a segment entirely below the
// cursor is skipped (nil error — the tail stream already delivered it), one
// starting past the cursor is ErrOutOfSync (a gap), and one overlapping the
// cursor mid-segment is ErrOutOfSync too (the caller should fall back to the
// tail stream). A non-empty active segment is sealed first, so adopted
// segments always land behind it in TID order.
func (l *Log) AdoptSealed(e SegmentEntry, raw []byte) error {
	if int64(len(raw)) != e.Bytes {
		return fmt.Errorf("seglog: adopt segment: %d bytes, entry says %d", len(raw), e.Bytes)
	}
	if crc := crc32.Checksum(raw, crcTable); crc != e.CRC {
		return fmt.Errorf("seglog: adopt segment: CRC %08x, entry says %08x", crc, e.CRC)
	}
	var minTID, maxTID int64
	n, err := scanSegmentBytes(raw, "replicated segment", func(tx txdb.Transaction) error {
		if minTID == 0 {
			minTID = tx.TID
		}
		maxTID = tx.TID
		return nil
	})
	if err != nil {
		return err
	}
	if n != e.Txns || n == 0 {
		return fmt.Errorf("seglog: adopt segment: %d transactions, entry says %d", n, e.Txns)
	}
	if minTID != e.MinTID || maxTID != e.MaxTID {
		return fmt.Errorf("seglog: adopt segment: TID range [%d, %d], entry says [%d, %d]",
			minTID, maxTID, e.MinTID, e.MaxTID)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	if e.MaxTID < l.nextTID {
		return nil // already fully present
	}
	if e.MinTID != l.nextTID {
		return fmt.Errorf("%w: adopted segment covers [%d, %d], log expects %d next",
			ErrOutOfSync, e.MinTID, e.MaxTID, l.nextTID)
	}
	if l.active.txns > 0 {
		if err := l.sealLocked(); err != nil {
			return err
		}
	}
	id := l.man.NextID
	path := segmentPath(l.dir, id)
	if err := atomicio.WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	}); err != nil {
		return err
	}
	adopted := e
	adopted.ID = id
	next := l.man
	next.Sealed = append(append([]SegmentEntry(nil), l.man.Sealed...), adopted)
	next.NextID = id + 1
	if err := storeManifest(l.dir, &next); err != nil {
		_ = os.Remove(path) // best-effort; Open reaps orphans
		return err
	}
	l.man = next
	l.seals++
	l.appended += int64(e.Txns)
	l.nextTID = e.MaxTID + 1
	close(l.notifyCh)
	l.notifyCh = make(chan struct{})
	return nil
}

// DedupEntry is one retained idempotency-window entry, exported so the
// window can be replicated to a standby alongside the data it describes.
type DedupEntry struct {
	Key   string `json:"key"`
	Seq   uint64 `json:"seq"`
	First int64  `json:"first"`
	Last  int64  `json:"last"`
	Txns  int    `json:"txns"`
}

// DedupEntriesAfter returns, in insertion order, the retained dedup entries
// whose TID range ends after the cursor — the entries a tail follower at
// that cursor has not yet adopted.
func (l *Log) DedupEntriesAfter(after int64) []DedupEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.window == nil {
		return nil
	}
	var out []DedupEntry
	for _, e := range l.window.ordered() {
		if e.Last <= after {
			continue
		}
		out = append(out, DedupEntry(e))
	}
	return out
}

// AdoptDedup installs replicated dedup-window entries on a standby. Entries
// describing data the log does not hold yet are skipped (the caller re-sends
// them after the data arrives); already-known (key, seq) pairs are no-ops.
func (l *Log) AdoptDedup(entries []DedupEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.window == nil || len(entries) == 0 {
		return nil
	}
	if l.broken != nil {
		return fmt.Errorf("seglog: log needs reopening: %w", l.broken)
	}
	for _, e := range entries {
		if e.Last >= l.nextTID {
			continue // data not yet replicated; retry next round
		}
		if _, state := l.window.lookup(e.Key, e.Seq); state != dedupFresh {
			continue
		}
		de := dedupEntry(e)
		if err := l.window.reserve(de); err != nil {
			return err
		}
		l.window.commit(de)
	}
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:      len(l.man.Sealed),
		ActiveTxns:    l.active.txns,
		ActiveBytes:   l.active.size,
		NextTID:       l.nextTID,
		TxnsAppended:  l.appended,
		Seals:         l.seals,
		Compactions:   l.compacts,
		RecoveredDrop: l.recovered,
		Epoch:         l.man.Epoch,
		FencedAppends: l.fenced,
		DedupHits:     l.dedupHits,
	}
	if l.window != nil {
		st.DedupEntries = l.window.len()
	}
	for _, e := range l.man.Sealed {
		st.SealedBytes += e.Bytes
		st.SealedTxns += e.Txns
	}
	return st
}

// fileCRC computes the crc32c of the first size bytes of path.
func fileCRC(path string, size int64) (uint32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if int64(len(raw)) < size {
		return 0, fmt.Errorf("seglog: %s: %d bytes on disk, expected at least %d", path, len(raw), size)
	}
	return crc32.Checksum(raw[:size], crcTable), nil
}
