// Seglog replication over an artifact store. The primary's Shipper publishes
// every sealed segment into a shared artifact.Store as a self-describing
// envelope (header JSON + the segment's raw file bytes); a standby's
// Follower adopts them in TID order via Log.AdoptSealed. Promotion is
// announced through the same store with an epoch envelope: any writer that
// observes a store epoch above its own token is fenced — the store is both
// the replication medium and the fencing authority, so a deposed primary
// cannot miss its own demotion.

package seglog

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"negmine/internal/artifact"
	"negmine/internal/fault"
)

// envelopeMagic opens every replication artifact.
const envelopeMagic = "NMRE"

// envelopeVersion is the current envelope format version.
const envelopeVersion = 1

// Envelope kinds.
const (
	EnvelopeSegment = "segment" // payload: a sealed segment's raw file bytes
	EnvelopeEpoch   = "epoch"   // no payload: an epoch bump (promotion)
)

// Envelope is the header of one replication artifact.
type Envelope struct {
	Kind  string        `json:"kind"`
	Epoch int64         `json:"epoch"`
	Node  string        `json:"node,omitempty"`
	Entry *SegmentEntry `json:"entry,omitempty"` // segment kind only
}

// encodeEnvelope renders magic + version + header length + header JSON,
// ready to be followed by the payload bytes.
func encodeEnvelope(h Envelope) ([]byte, error) {
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(envelopeMagic)+2*binary.MaxVarintLen64+len(hdr))
	buf = append(buf, envelopeMagic...)
	buf = binary.AppendUvarint(buf, envelopeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	return append(buf, hdr...), nil
}

// decodeEnvelope splits an artifact's bytes into header and payload.
func decodeEnvelope(raw []byte) (Envelope, []byte, error) {
	var h Envelope
	if len(raw) < len(envelopeMagic) || string(raw[:len(envelopeMagic)]) != envelopeMagic {
		return h, nil, fmt.Errorf("seglog: replication artifact: bad magic")
	}
	rest := raw[len(envelopeMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 || ver != envelopeVersion {
		return h, nil, fmt.Errorf("seglog: replication artifact: unsupported version %d", ver)
	}
	rest = rest[n:]
	hlen, n := binary.Uvarint(rest)
	if n <= 0 || hlen > uint64(len(rest)-n) {
		return h, nil, fmt.Errorf("seglog: replication artifact: truncated header")
	}
	rest = rest[n:]
	dec := json.NewDecoder(bytes.NewReader(rest[:hlen]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("seglog: replication artifact header: %w", err)
	}
	return h, rest[hlen:], nil
}

// PublishEpoch announces a new epoch (a promotion) in the replication store.
func PublishEpoch(store artifact.Store, epoch int64, node string) error {
	env, err := encodeEnvelope(Envelope{Kind: EnvelopeEpoch, Epoch: epoch, Node: node})
	if err != nil {
		return err
	}
	_, err = store.Put("seglog-epoch", func(_ uint64, w io.Writer) error {
		_, werr := w.Write(env)
		return werr
	})
	return err
}

// StoreEpoch returns the highest epoch recorded in the replication store
// (0 for a fresh store) by scanning envelope headers newest-first.
func StoreEpoch(store artifact.Store) (int64, error) {
	infos, err := store.List()
	if err != nil {
		return 0, err
	}
	var max int64
	for _, info := range infos {
		h, _, err := readEnvelope(store, info.Generation)
		if err != nil {
			return 0, err
		}
		if h.Epoch > max {
			max = h.Epoch
		}
	}
	return max, nil
}

func readEnvelope(store artifact.Store, gen uint64) (Envelope, []byte, error) {
	rc, _, err := store.Get(gen)
	if err != nil {
		return Envelope{}, nil, err
	}
	defer rc.Close()
	raw, err := io.ReadAll(rc)
	if err != nil {
		return Envelope{}, nil, err
	}
	return decodeEnvelope(raw)
}

// Shipper publishes a primary's sealed segments into the replication store.
// It is single-goroutine; the Log it ships from may be appended to
// concurrently.
type Shipper struct {
	Log   *Log
	Store artifact.Store
	Node  string
	// Epoch is the fencing token this writer holds. Observing a higher
	// epoch in the store means another node was promoted past us.
	Epoch int64

	seenGen    uint64 // store generations at or below this are processed
	shippedMax int64  // highest TID covered by a shipped (or found) segment
	inited     bool
}

// Sync performs one replication round: it scans the store for envelopes it
// has not seen (self-fencing on any higher epoch, and skipping segments
// already shipped — by us before a restart, or by a predecessor primary),
// then publishes every sealed segment above the shipped high-water mark.
// A fencing discovery durably advances the local log's epoch before
// returning ErrFenced, so in-flight appends holding the old token fail.
func (s *Shipper) Sync() (shipped int, err error) {
	infos, err := s.Store.List()
	if err != nil {
		return 0, err
	}
	maxEpoch := int64(0)
	for _, info := range infos {
		if info.Generation <= s.seenGen {
			continue
		}
		h, _, err := readEnvelope(s.Store, info.Generation)
		if err != nil {
			return 0, err
		}
		if h.Epoch > maxEpoch {
			maxEpoch = h.Epoch
		}
		if h.Kind == EnvelopeSegment && h.Entry != nil && h.Entry.MaxTID > s.shippedMax {
			s.shippedMax = h.Entry.MaxTID
		}
		s.seenGen = info.Generation
	}
	s.inited = true
	if maxEpoch > s.Epoch {
		if aerr := s.Log.AdvanceEpoch(maxEpoch); aerr != nil {
			return 0, aerr
		}
		return 0, fmt.Errorf("%w: store epoch %d above writer epoch %d", ErrFenced, maxEpoch, s.Epoch)
	}

	entries := s.Log.SealedEntries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].MinTID < entries[j].MinTID })
	for _, e := range entries {
		if e.MinTID <= s.shippedMax {
			continue // covered by an already-shipped range (or a compaction of one)
		}
		if err := fault.Hit(PointReplicate); err != nil {
			return shipped, fmt.Errorf("seglog: replicate: %w", err)
		}
		raw, err := s.Log.ReadSealed(e)
		if err != nil {
			return shipped, err
		}
		entry := e
		env, err := encodeEnvelope(Envelope{Kind: EnvelopeSegment, Epoch: s.Epoch, Node: s.Node, Entry: &entry})
		if err != nil {
			return shipped, err
		}
		info, err := s.Store.Put("seglog-segment", func(_ uint64, w io.Writer) error {
			if _, werr := w.Write(env); werr != nil {
				return werr
			}
			_, werr := w.Write(raw)
			return werr
		})
		if err != nil {
			return shipped, err
		}
		s.seenGen = info.Generation
		s.shippedMax = e.MaxTID
		shipped++
	}
	return shipped, nil
}

// Follower adopts replicated segments from the store into a standby's log.
type Follower struct {
	Log   *Log
	Store artifact.Store

	seenGen uint64
}

// Sync performs one catch-up round: store envelopes are processed in
// generation order; segments continuing the log are adopted, ones the tail
// stream already delivered are skipped, and the round stops (without
// consuming) at the first segment that would leave a gap — the tail stream
// fills it and a later round retries. It returns how many segments were
// adopted and the highest epoch observed anywhere in the store so far.
func (f *Follower) Sync() (adopted int, maxEpoch int64, err error) {
	infos, err := f.Store.List()
	if err != nil {
		return 0, 0, err
	}
	for _, info := range infos {
		if info.Generation <= f.seenGen {
			continue
		}
		h, payload, err := readEnvelope(f.Store, info.Generation)
		if err != nil {
			return adopted, maxEpoch, err
		}
		if h.Epoch > maxEpoch {
			maxEpoch = h.Epoch
		}
		if h.Kind == EnvelopeSegment {
			if h.Entry == nil {
				return adopted, maxEpoch, fmt.Errorf("seglog: segment envelope without entry (store generation %d)", info.Generation)
			}
			before := f.Log.NextTID()
			switch err := f.Log.AdoptSealed(*h.Entry, payload); {
			case err == nil:
				if f.Log.NextTID() > before {
					adopted++ // actually installed (vs an already-present skip)
				}
			case errors.Is(err, ErrOutOfSync) && h.Entry.MinTID > f.Log.NextTID():
				// Gap: the open tail between our cursor and this segment has
				// not arrived yet. Leave this generation unconsumed.
				return adopted, maxEpoch, nil
			case errors.Is(err, ErrOutOfSync):
				// Overlaps our cursor mid-segment: the tail stream owns this
				// range. Consume and move on.
			default:
				return adopted, maxEpoch, err
			}
		}
		f.seenGen = info.Generation
	}
	return adopted, maxEpoch, nil
}
