package atomicio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine/internal/fault"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := strings.Repeat("hello atomic world\n", 100)
	err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, want)
		return err
	})
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != want {
		t.Fatalf("content mismatch: %d bytes, want %d", len(got), len(want))
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content")
		return err
	})
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content = %q, want %q", got, "new content")
	}
}

// TestKilledWriteLeavesTargetIntact arms the write failpoint so the stream
// dies mid-file (the payload spans several bufio chunks), and checks the
// previous content survives and no temp litter is left behind.
func TestKilledWriteLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	const old = "previous complete report"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}

	defer fault.Enable(PointWrite, fault.Error("disk died"), fault.OnHit(2))()
	chunk := bytes.Repeat([]byte("x"), 4096) // one bufio buffer per write
	err := WriteFile(path, func(w io.Writer) error {
		for i := 0; i < 16; i++ {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WriteFile = %v, want injected error", err)
	}
	if fault.Fired(PointWrite) != 1 {
		t.Fatalf("failpoint fired %d times, want 1", fault.Fired(PointWrite))
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != old {
		t.Fatalf("target after killed write = %q, %v; want old content intact", got, rerr)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestWriteCallbackErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	sentinel := errors.New("emit failed")
	if err := WriteFile(path, func(io.Writer) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("target created despite failed write: %v", err)
	}
}
