// Package atomicio provides crash-safe file replacement: content is
// streamed to a temporary file in the destination directory, fsynced, and
// atomically renamed over the target, and the directory entry is fsynced
// too. A reader therefore observes either the old complete file or the new
// complete file — never a truncated one — no matter where the writer is
// killed. This is what lets `negmined -watch` poll a report file that
// `negmine -o` is rewriting without ever loading garbage.
package atomicio

import (
	"bufio"
	"io"
	"os"
	"path/filepath"

	"negmine/internal/fault"
)

// PointWrite is the failpoint evaluated before every chunk flushed to the
// temporary file; arming it with an error simulates a writer killed
// mid-stream (the target must stay untouched).
const PointWrite = "atomicio.write"

// WriteFile atomically replaces path with whatever write produces. On any
// error — from write, the filesystem, or an injected fault — the temporary
// file is removed and the previous content of path is left intact.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(faultWriter{tmp})
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself: fsync the directory. Best-effort — some
	// filesystems refuse to sync directories, and the data is already safe.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// faultWriter threads the PointWrite failpoint into every flushed chunk.
type faultWriter struct{ w io.Writer }

func (f faultWriter) Write(p []byte) (int, error) {
	if err := fault.Hit(PointWrite); err != nil {
		return 0, err
	}
	return f.w.Write(p)
}
