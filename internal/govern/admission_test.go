package govern

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negmine/internal/fault"
)

// fakeClock is a manually advanced clock for deterministic bucket and AIMD
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustAcquire(t *testing.T, c *Controller, ep string, class Class) func() {
	t.Helper()
	rel, err := c.Acquire(context.Background(), ep, class)
	if err != nil {
		t.Fatalf("Acquire(%s, %v): %v", ep, class, err)
	}
	return rel
}

func TestAcquireReleaseBasic(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2})
	r1 := mustAcquire(t, c, "rules", Cheap)
	r2 := mustAcquire(t, c, "rules", Cheap)
	if got := c.Stats().Inflight; got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r2()
	s := c.Stats()
	if s.Inflight != 0 || s.Admitted != 2 || s.Shed() != 0 {
		t.Fatalf("after release: %+v", s)
	}
	// Double release is harmless.
	r1()
	if got := c.Stats().Inflight; got != 0 {
		t.Fatalf("double release corrupted inflight: %d", got)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 1})
	release := mustAcquire(t, c, "rules", Cheap)
	defer release()

	// One waiter fits the queue.
	done := make(chan struct{})
	go func() {
		rel, err := c.Acquire(context.Background(), "rules", Cheap)
		if err == nil {
			rel()
		}
		close(done)
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	// The next request finds the queue full and is shed.
	_, err := c.Acquire(context.Background(), "rules", Cheap)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want queue-full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	release()
	<-done
	if s := c.Stats(); s.ShedQueueFull != 1 || s.QueueHighWater != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestQueuedRequestDeadlineSheds(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 4})
	release := mustAcquire(t, c, "rules", Cheap)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Acquire(ctx, "rules", Cheap)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedDeadline {
		t.Fatalf("err = %v, want deadline shed", err)
	}
	if s := c.Stats(); s.Queued != 0 {
		t.Fatalf("expired waiter left in queue: %+v", s)
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 8})
	release := mustAcquire(t, c, "rules", Cheap)

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background(), "rules", Cheap)
			if err != nil {
				t.Errorf("waiter %d shed: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}()
		// Serialize enqueue order so FIFO is observable.
		waitFor(t, func() bool { return c.Stats().Queued == i+1 })
	}
	release()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
}

func TestRateLimitSheds(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{MaxConcurrent: 8, MaxRPS: 2, Burst: 2, Now: clk.Now})

	// Burst of 2 is admitted, the third is rate-shed.
	mustAcquire(t, c, "score", Expensive)()
	mustAcquire(t, c, "score", Expensive)()
	_, err := c.Acquire(context.Background(), "score", Expensive)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedRate {
		t.Fatalf("err = %v, want rate shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("rate RetryAfter = %v, want (0, 1s]", shed.RetryAfter)
	}

	// Buckets are per endpoint: a different endpoint still has tokens.
	mustAcquire(t, c, "rules", Cheap)()

	// Refill after half a second buys one more token.
	clk.Advance(500 * time.Millisecond)
	mustAcquire(t, c, "score", Expensive)()
	if s := c.Stats(); s.ShedRate != 1 {
		t.Fatalf("shedRate = %d, want 1", s.ShedRate)
	}
}

func TestDegradedModeShedsExpensiveKeepsCheap(t *testing.T) {
	// MaxQueue 4, DegradeHigh 0.5: two waiters trip degraded mode.
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 4, DegradeHigh: 0.5, DegradeLow: 0.1})
	release := mustAcquire(t, c, "rules", Cheap)

	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background(), "rules", Cheap)
			if err == nil {
				served.Add(1)
				rel()
			}
		}()
	}
	waitFor(t, func() bool { return c.Stats().Degraded })

	// Expensive work is shed instantly…
	_, err := c.Acquire(context.Background(), "score", Expensive)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedDegraded {
		t.Fatalf("expensive in degraded mode: %v, want degraded shed", err)
	}
	// …while cheap lookups still queue and get served.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, err := c.Acquire(context.Background(), "rules", Cheap)
		if err == nil {
			served.Add(1)
			rel()
		}
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 3 })

	release()
	wg.Wait()
	if served.Load() != 3 {
		t.Fatalf("cheap served = %d, want 3", served.Load())
	}
	// Queue drained below low-water: degraded mode exits.
	if s := c.Stats(); s.Degraded || s.DegradedEnters != 1 {
		t.Fatalf("after drain: %+v", s)
	}
}

func TestAIMDShrinksAndRecovers(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		MaxConcurrent: 16, MinConcurrent: 2,
		LatencyTarget: 100 * time.Millisecond,
		Now:           clk.Now,
	})
	if got := c.Stats().Limit; got != 16 {
		t.Fatalf("initial limit = %d, want 16", got)
	}

	// Slow completions shrink the window multiplicatively, at most once per
	// target period.
	for i := 0; i < 3; i++ {
		rel := mustAcquire(t, c, "rules", Cheap)
		clk.Advance(200 * time.Millisecond) // latency 200ms > 100ms target
		rel()
	}
	if got := c.Stats().Limit; got >= 16 || got < 2 {
		t.Fatalf("limit after slow completions = %d, want shrunk within [2, 16)", got)
	}
	shrunk := c.Stats().Limit

	// Fast completions grow it back additively, one step per target period.
	for i := 0; i < 10; i++ {
		clk.Advance(150 * time.Millisecond)
		rel := mustAcquire(t, c, "rules", Cheap)
		rel() // 0ms completion, past the grow window: +1
	}
	if got := c.Stats().Limit; got <= shrunk {
		t.Fatalf("limit did not recover: %d (was %d)", got, shrunk)
	}

	// The floor holds no matter how slow things get.
	for i := 0; i < 50; i++ {
		rel := mustAcquire(t, c, "rules", Cheap)
		clk.Advance(time.Second)
		rel()
	}
	if got := c.Stats().Limit; got != 2 {
		t.Fatalf("limit = %d, want floor 2", got)
	}
}

func TestQueueFullFailpointForcesShed(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 64})
	release := mustAcquire(t, c, "rules", Cheap)
	defer release()

	defer fault.Enable(PointQueueFull, fault.Error("injected saturation"))()
	_, err := c.Acquire(context.Background(), "rules", Cheap)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want injected queue-full shed", err)
	}
	// Injected saturation also trips degraded mode, like the real thing.
	if !c.Stats().Degraded {
		t.Fatal("injected queue-full did not enter degraded mode")
	}
}

func TestLimiterStallFailpoint(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 4})

	defer fault.Enable(PointLimiterStall, fault.Error("stalled"), fault.OnHit(1))()
	_, err := c.Acquire(context.Background(), "rules", Cheap)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedStall {
		t.Fatalf("err = %v, want limiter-stall shed", err)
	}
	// Disarmed after the first hit: subsequent admissions are normal.
	mustAcquire(t, c, "rules", Cheap)()
	if s := c.Stats(); s.ShedStall != 1 || s.Admitted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
