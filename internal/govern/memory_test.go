package govern

import (
	"errors"
	"math"
	"sync"
	"testing"

	"negmine/internal/fault"
)

func TestBudgetReserveRelease(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(40); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(1); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over-budget reserve: %v, want ErrOverBudget", err)
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	if got := b.Available(); got != 0 {
		t.Fatalf("Available = %d, want 0", got)
	}
	b.Release(40)
	if err := b.Reserve(30); err != nil {
		t.Fatal(err)
	}
	if got, want := b.HighWater(), int64(100); got != want {
		t.Fatalf("HighWater = %d, want %d", got, want)
	}
	if got := b.Denials(); got != 1 {
		t.Fatalf("Denials = %d, want 1", got)
	}
}

func TestBudgetNilAndUnlimited(t *testing.T) {
	var nilBudget *Budget
	if err := nilBudget.Reserve(1 << 40); err != nil {
		t.Fatalf("nil budget rejected: %v", err)
	}
	nilBudget.Release(1 << 40)
	if nilBudget.Available() != math.MaxInt64 {
		t.Fatal("nil budget not unlimited")
	}

	u := NewBudget(0)
	if err := u.Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited budget rejected: %v", err)
	}
	if got := u.InUse(); got != 1<<40 {
		t.Fatalf("unlimited budget ledger broken: %d", got)
	}
	if u.Available() != math.MaxInt64 {
		t.Fatal("unlimited budget Available != MaxInt64")
	}
}

func TestBudgetReleaseClampsAtZero(t *testing.T) {
	b := NewBudget(10)
	if err := b.Reserve(5); err != nil {
		t.Fatal(err)
	}
	b.Release(50) // caller bug: must clamp, not go negative
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after over-release = %d, want 0", got)
	}
	if err := b.Reserve(10); err != nil {
		t.Fatalf("budget corrupted by over-release: %v", err)
	}
}

func TestBudgetConcurrentNeverExceedsTotal(t *testing.T) {
	const total, chunk = 1 << 20, 1 << 10
	b := NewBudget(total)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := b.Reserve(chunk); err == nil {
					b.Release(chunk)
				}
			}
		}()
	}
	wg.Wait()
	if hw := b.HighWater(); hw > total {
		t.Fatalf("high water %d exceeded total %d", hw, total)
	}
}

func TestBudgetFailpoint(t *testing.T) {
	b := NewBudget(0) // unlimited: only the failpoint can deny
	defer fault.Enable(PointBudget, fault.Error("injected oom"), fault.OnHit(2))()
	if err := b.Reserve(1); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	err := b.Reserve(1)
	if !errors.Is(err, ErrOverBudget) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected denial = %v, want ErrOverBudget wrapping ErrInjected", err)
	}
	if err := b.Reserve(1); err != nil {
		t.Fatalf("third reserve: %v", err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1048576", 1 << 20, false},
		{"512MiB", 512 << 20, false},
		{"512mb", 512 << 20, false},
		{"2G", 2 << 30, false},
		{"2GiB", 2 << 30, false},
		{"1.5k", 1536, false},
		{"64b", 64, false},
		{"1t", 1 << 40, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-5m", 0, true},
		{"mib", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.err != (err != nil) {
			t.Errorf("ParseBytes(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDetectLimitDoesNotPanic(t *testing.T) {
	// Environment-dependent: just prove it returns something sane.
	if lim := DetectLimit(); lim < 0 {
		t.Fatalf("DetectLimit = %d, want ≥ 0", lim)
	}
	b := DefaultBudget()
	if b == nil {
		t.Fatal("DefaultBudget returned nil")
	}
}
