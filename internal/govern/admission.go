package govern

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"negmine/internal/fault"
)

// Class partitions requests by cost so degraded mode can keep the cheap
// ones answering while the expensive ones are shed.
type Class int

const (
	// Cheap requests (indexed snapshot lookups: GET /rules) go through the
	// limiter and queue but are still admitted in degraded mode.
	Cheap Class = iota
	// Expensive requests (/score batches, /reload re-mines) are the first
	// to be shed: immediately, without queueing, once the controller enters
	// degraded mode.
	Expensive
)

// String names the class for metrics and logs.
func (c Class) String() string {
	switch c {
	case Cheap:
		return "cheap"
	case Expensive:
		return "expensive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Shed reasons, exported in Stats and /metrics.
const (
	ShedQueueFull = "queue-full"
	ShedDeadline  = "deadline"
	ShedRate      = "rate-limit"
	ShedDegraded  = "degraded"
	ShedStall     = "limiter-stall"
)

// ShedError is the typed rejection every failed admission returns. The HTTP
// layer maps it to 503 with a Retry-After header; anything else treats it as
// "back off and come back".
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("govern: request shed (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Config tunes a Controller. The zero value of every field falls back to
// the default documented on it.
type Config struct {
	// MaxConcurrent is the hard ceiling on in-flight admitted requests and
	// the upper bound of the AIMD window (default 64).
	MaxConcurrent int
	// MinConcurrent is the AIMD floor — the window never shrinks below it
	// (default 1).
	MinConcurrent int
	// MaxQueue bounds how many requests may wait for a slot; the
	// (MaxQueue+1)-th waiter is shed with queue-full (default
	// 4×MaxConcurrent).
	MaxQueue int
	// MaxRPS is the per-endpoint token-bucket rate (default 0 = no rate
	// limit). Each distinct endpoint string passed to Acquire gets its own
	// bucket refilling at MaxRPS tokens/second.
	MaxRPS float64
	// Burst is the bucket capacity (default max(MaxRPS, 1)).
	Burst float64
	// LatencyTarget is the AIMD setpoint: completions slower than this
	// shrink the concurrency window multiplicatively, completions under it
	// grow the window additively (default 100ms).
	LatencyTarget time.Duration
	// RetryAfter is the hint attached to queue-full and degraded sheds
	// (default 1s). Deadline sheds use the remaining queue drain estimate,
	// rate sheds the time until the next token.
	RetryAfter time.Duration
	// DegradeHigh is the queue-fill fraction at which the controller enters
	// degraded mode (default 0.75); DegradeLow the fraction at which it
	// exits (default 0.25). Hysteresis keeps it from flapping at the edge.
	DegradeHigh float64
	DegradeLow  float64
	// Now overrides the clock, for deterministic tests (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.MinConcurrent <= 0 {
		c.MinConcurrent = 1
	}
	if c.MinConcurrent > c.MaxConcurrent {
		c.MinConcurrent = c.MaxConcurrent
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.Burst <= 0 {
		c.Burst = math.Max(c.MaxRPS, 1)
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DegradeHigh <= 0 || c.DegradeHigh > 1 {
		c.DegradeHigh = 0.75
	}
	if c.DegradeLow < 0 || c.DegradeLow >= c.DegradeHigh {
		c.DegradeLow = c.DegradeHigh / 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// waiter is one queued admission request.
type waiter struct {
	ch      chan struct{} // closed on grant
	granted bool
}

// Controller is the admission layer: token buckets → degraded-mode gate →
// concurrency limiter → bounded FIFO queue. Acquire either admits (returning
// a release func the caller must invoke when the work finishes) or sheds
// with a *ShedError. It is safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    float64 // AIMD window, in [MinConcurrent, MaxConcurrent]
	inflight int
	waiters  []*waiter // FIFO
	degraded bool
	buckets  map[string]*bucket
	lastGrow time.Time // last additive increase
	lastCut  time.Time // last multiplicative decrease

	// Counters are atomics so Stats and /metrics read without the lock.
	admitted       atomic.Int64
	sheds          [5]atomic.Int64 // indexed by shedIndex
	degradedEnters atomic.Int64
	queueHighWater atomic.Int64
}

func shedIndex(reason string) int {
	switch reason {
	case ShedQueueFull:
		return 0
	case ShedDeadline:
		return 1
	case ShedRate:
		return 2
	case ShedDegraded:
		return 3
	default:
		return 4 // limiter-stall
	}
}

// NewController builds an admission controller from cfg (zero fields get
// defaults; see Config).
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		limit:   float64(cfg.MaxConcurrent),
		buckets: map[string]*bucket{},
	}
}

func (c *Controller) shed(reason string, retryAfter time.Duration) *ShedError {
	if retryAfter <= 0 {
		retryAfter = c.cfg.RetryAfter
	}
	c.sheds[shedIndex(reason)].Add(1)
	return &ShedError{Reason: reason, RetryAfter: retryAfter}
}

// Acquire admits one request for endpoint (the token-bucket key) and class,
// blocking in the bounded queue until a concurrency slot frees, the context
// expires, or the request is shed. On success the returned release func must
// be called exactly once when the request finishes; it feeds the completion
// latency back into the AIMD window.
func (c *Controller) Acquire(ctx context.Context, endpoint string, class Class) (release func(), err error) {
	// Failpoint: a sleep action stalls admission (the lock-convoy model), an
	// error action sheds outright.
	if err := fault.Hit(PointLimiterStall); err != nil {
		return nil, c.shed(ShedStall, 0)
	}

	now := c.cfg.Now()

	// Rate limit before anything else: a shed here is the cheapest possible
	// rejection and protects the queue itself from a request flood.
	if c.cfg.MaxRPS > 0 {
		c.mu.Lock()
		b := c.buckets[endpoint]
		if b == nil {
			b = newBucket(c.cfg.MaxRPS, c.cfg.Burst, now)
			c.buckets[endpoint] = b
		}
		ok, wait := b.take(now)
		c.mu.Unlock()
		if !ok {
			return nil, c.shed(ShedRate, wait)
		}
	}

	c.mu.Lock()
	if c.degraded && class == Expensive {
		c.mu.Unlock()
		return nil, c.shed(ShedDegraded, 0)
	}
	if c.inflight < c.limitInt() && len(c.waiters) == 0 {
		c.inflight++
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(now), nil
	}

	// No free slot: queue, bounded.
	full := len(c.waiters) >= c.cfg.MaxQueue
	if err := fault.Hit(PointQueueFull); err != nil {
		full = true // injected saturation
	}
	if full {
		c.enterDegradedLocked()
		c.mu.Unlock()
		return nil, c.shed(ShedQueueFull, 0)
	}
	w := &waiter{ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	if depth := int64(len(c.waiters)); depth > c.queueHighWater.Load() {
		c.queueHighWater.Store(depth)
	}
	if float64(len(c.waiters)) >= c.cfg.DegradeHigh*float64(c.cfg.MaxQueue) {
		c.enterDegradedLocked()
	}
	c.mu.Unlock()

	select {
	case <-w.ch:
		c.admitted.Add(1)
		return c.releaseFunc(c.cfg.Now()), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the deadline: we own a slot but the deadline
			// has passed, so serving the request would only produce a
			// response nobody is waiting for. Give the slot back and shed.
			c.inflight--
			c.grantLocked()
		} else {
			for i, q := range c.waiters {
				if q == w {
					c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
					break
				}
			}
		}
		c.exitDegradedLocked()
		c.mu.Unlock()
		return nil, c.shed(ShedDeadline, 0)
	}
}

// releaseFunc returns the once-only completion callback for an admitted
// request started at the given time.
func (c *Controller) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			d := c.cfg.Now().Sub(start)
			c.mu.Lock()
			c.observeLocked(d)
			c.inflight--
			c.grantLocked()
			c.exitDegradedLocked()
			c.mu.Unlock()
		})
	}
}

// limitInt is the integer concurrency window (≥ MinConcurrent).
func (c *Controller) limitInt() int {
	if l := int(c.limit); l > c.cfg.MinConcurrent {
		return l
	}
	return c.cfg.MinConcurrent
}

// observeLocked feeds one completion latency into the AIMD window: additive
// increase (+1 per LatencyTarget of healthy completions) while under the
// setpoint, multiplicative decrease (×0.7, at most once per setpoint period
// so one burst of slow responses counts once) above it.
func (c *Controller) observeLocked(d time.Duration) {
	now := c.cfg.Now()
	if d > c.cfg.LatencyTarget {
		if now.Sub(c.lastCut) >= c.cfg.LatencyTarget {
			c.limit = math.Max(float64(c.cfg.MinConcurrent), c.limit*0.7)
			c.lastCut = now
		}
		return
	}
	if now.Sub(c.lastGrow) >= c.cfg.LatencyTarget {
		c.limit = math.Min(float64(c.cfg.MaxConcurrent), c.limit+1)
		c.lastGrow = now
	}
}

// grantLocked hands freed slots to queued waiters in FIFO order.
func (c *Controller) grantLocked() {
	for c.inflight < c.limitInt() && len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.granted = true
		c.inflight++
		close(w.ch)
	}
}

func (c *Controller) enterDegradedLocked() {
	if !c.degraded {
		c.degraded = true
		c.degradedEnters.Add(1)
	}
}

// exitDegradedLocked leaves degraded mode once the queue has drained below
// the low-water mark.
func (c *Controller) exitDegradedLocked() {
	if c.degraded && float64(len(c.waiters)) <= c.cfg.DegradeLow*float64(c.cfg.MaxQueue) {
		c.degraded = false
	}
}

// Stats is a point-in-time snapshot of the controller, exported through
// /metrics.
type Stats struct {
	Limit          int   `json:"limit"`          // current AIMD window
	MaxConcurrent  int   `json:"maxConcurrent"`  // configured ceiling
	Inflight       int   `json:"inflight"`       // admitted, not yet released
	Queued         int   `json:"queued"`         // waiting for a slot
	MaxQueue       int   `json:"maxQueue"`       // queue bound
	QueueHighWater int64 `json:"queueHighWater"` // deepest the queue has been
	Degraded       bool  `json:"degraded"`       // shedding expensive work
	DegradedEnters int64 `json:"degradedEnters"` // times degraded mode was entered

	Admitted      int64 `json:"admitted"`
	ShedQueueFull int64 `json:"shedQueueFull"`
	ShedDeadline  int64 `json:"shedDeadline"`
	ShedRate      int64 `json:"shedRateLimit"`
	ShedDegraded  int64 `json:"shedDegraded"`
	ShedStall     int64 `json:"shedLimiterStall"`
}

// Shed returns the total number of shed requests across all reasons.
func (s Stats) Shed() int64 {
	return s.ShedQueueFull + s.ShedDeadline + s.ShedRate + s.ShedDegraded + s.ShedStall
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Limit:         c.limitInt(),
		MaxConcurrent: c.cfg.MaxConcurrent,
		Inflight:      c.inflight,
		Queued:        len(c.waiters),
		MaxQueue:      c.cfg.MaxQueue,
		Degraded:      c.degraded,
	}
	c.mu.Unlock()
	s.QueueHighWater = c.queueHighWater.Load()
	s.DegradedEnters = c.degradedEnters.Load()
	s.Admitted = c.admitted.Load()
	s.ShedQueueFull = c.sheds[0].Load()
	s.ShedDeadline = c.sheds[1].Load()
	s.ShedRate = c.sheds[2].Load()
	s.ShedDegraded = c.sheds[3].Load()
	s.ShedStall = c.sheds[4].Load()
	return s
}

// bucket is one endpoint's token bucket. Guarded by the controller's mutex.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take refills by elapsed time and claims one token, or reports how long
// until one becomes available.
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
