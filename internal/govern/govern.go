// Package govern is the resource-governance layer: explicit budgets for the
// two resources that take the system down under load — concurrency on the
// serving side and memory on the mining side.
//
// The serving half is the admission Controller: a bounded FIFO wait queue in
// front of the request handlers, a concurrency limiter whose window adapts
// by AIMD on observed latency, per-endpoint token-bucket rate limits, and a
// degraded mode that keeps cheap snapshot lookups answering while expensive
// work is shed. Every rejection is a typed *ShedError carrying a Retry-After
// hint, so the HTTP layer can turn it into a well-formed 503 instead of an
// opaque failure.
//
// The mining half is the memory Budget: a process-wide byte ledger the
// allocation hot spots (bitmap materialization, hash-tree growth, partition
// buffers) reserve against before allocating. A failed reservation is a
// signal to degrade — fall back to a cheaper representation or narrow a
// partition — never a crash. The default budget comes from GOMEMLIMIT or
// the cgroup memory limit, mirroring the Partition paper's premise that the
// miner must size its working set to the memory it actually has.
//
// Both halves follow the same philosophy as internal/fault, which the
// package integrates with: overload must be a first-class, reproducible
// test input. The failpoints below let the chaos suite drive every shed and
// fallback path on demand.
package govern

// Failpoints (see internal/fault). All are no-ops unless armed by a test or
// NEGMINE_FAULTS.
const (
	// PointQueueFull fires on every attempt to enqueue a request for
	// admission; an error action simulates a saturated queue and forces the
	// queue-full shed path regardless of actual occupancy.
	PointQueueFull = "govern.queue.full"

	// PointBudget fires on every memory-budget reservation; an error action
	// simulates budget exhaustion and must produce the documented
	// degradation (bitmap→hashtree fallback, partition narrowing), never a
	// failure of the whole run.
	PointBudget = "govern.budget"

	// PointLimiterStall fires at the top of every admission attempt, before
	// the limiter is consulted; a sleep action models a stalled limiter
	// (lock convoy, scheduler delay) and an error action sheds the request
	// outright.
	PointLimiterStall = "govern.limiter.stall"
)
