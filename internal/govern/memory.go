package govern

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"

	"negmine/internal/fault"
)

// ErrOverBudget is the sentinel every failed reservation wraps, so callers
// can tell "degrade now" from a real error with errors.Is.
var ErrOverBudget = errors.New("govern: memory budget exceeded")

// Budget is a process-wide memory ledger. Allocation hot spots reserve bytes
// before allocating and release them when the allocation dies; a reservation
// that would push usage past the budget fails with ErrOverBudget instead of
// letting the process grow into swap or an OOM kill. A nil *Budget is valid
// everywhere and never rejects, so plumbing it through options costs callers
// nothing.
//
// The ledger tracks intent, not RSS: it bounds the large, predictable
// allocations (bitmap matrices, hash trees, partition buffers) that dominate
// mining memory, which is what keeps observed RSS under the limit in
// practice.
type Budget struct {
	total     int64 // 0 = unlimited (still keeps the ledger and failpoint)
	used      atomic.Int64
	highWater atomic.Int64
	denials   atomic.Int64
}

// NewBudget returns a ledger capped at total bytes. total ≤ 0 means
// unlimited: reservations are tracked (and the PointBudget failpoint still
// evaluated) but never rejected on size.
func NewBudget(total int64) *Budget {
	if total < 0 {
		total = 0
	}
	return &Budget{total: total}
}

// Reserve claims n bytes, failing with an error wrapping ErrOverBudget when
// the claim would exceed the budget (or when the PointBudget failpoint is
// armed). A nil receiver always succeeds.
func (b *Budget) Reserve(n int64) error {
	if b == nil {
		return nil
	}
	if err := fault.Hit(PointBudget); err != nil {
		b.denials.Add(1)
		return fmt.Errorf("%w: %w", ErrOverBudget, err)
	}
	if n <= 0 {
		return nil
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if b.total > 0 && next > b.total {
			b.denials.Add(1)
			return fmt.Errorf("%w: %d in use + %d requested > %d total",
				ErrOverBudget, cur, n, b.total)
		}
		if b.used.CompareAndSwap(cur, next) {
			for {
				hw := b.highWater.Load()
				if next <= hw || b.highWater.CompareAndSwap(hw, next) {
					return nil
				}
			}
		}
	}
}

// Release returns n bytes to the budget. Releasing more than was reserved is
// a caller bug; the ledger clamps at zero rather than going negative.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	if cur := b.used.Add(-n); cur < 0 {
		b.used.CompareAndSwap(cur, 0)
	}
}

// InUse returns the bytes currently reserved.
func (b *Budget) InUse() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// HighWater returns the maximum bytes ever simultaneously reserved — the
// number the acceptance test compares against Total.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.highWater.Load()
}

// Denials returns how many reservations have been rejected.
func (b *Budget) Denials() int64 {
	if b == nil {
		return 0
	}
	return b.denials.Load()
}

// Total returns the budget cap (0 = unlimited).
func (b *Budget) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Available returns how many bytes a reservation could still claim
// (math.MaxInt64 when unlimited or the receiver is nil).
func (b *Budget) Available() int64 {
	if b == nil || b.total <= 0 {
		return math.MaxInt64
	}
	if avail := b.total - b.used.Load(); avail > 0 {
		return avail
	}
	return 0
}

// DetectLimit discovers the memory ceiling the process actually runs under:
// GOMEMLIMIT when one is set, else the cgroup memory limit (v2 then v1) on
// Linux. It returns 0 when no limit is discoverable, in which case callers
// should treat the budget as unlimited rather than guessing.
func DetectLimit() int64 {
	// debug.SetMemoryLimit(-1) reads the current limit without changing it;
	// math.MaxInt64 is the package's "no limit" sentinel.
	if lim := debug.SetMemoryLimit(-1); lim > 0 && lim < math.MaxInt64 {
		return lim
	}
	for _, path := range []string{
		"/sys/fs/cgroup/memory.max",                   // cgroup v2
		"/sys/fs/cgroup/memory/memory.limit_in_bytes", // cgroup v1
	} {
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		s := strings.TrimSpace(string(raw))
		if s == "max" {
			continue
		}
		n, err := strconv.ParseInt(s, 10, 64)
		// cgroup v1 reports "no limit" as a huge page-rounded number; treat
		// anything ≥ 1 PiB as unlimited.
		if err == nil && n > 0 && n < 1<<50 {
			return n
		}
	}
	return 0
}

// DefaultBudget returns a budget sized to the detected process limit with a
// fraction of headroom left for the Go runtime, request handling and
// fragmentation: 80% of DetectLimit, or unlimited when no limit is
// discoverable.
func DefaultBudget() *Budget {
	lim := DetectLimit()
	if lim <= 0 {
		return NewBudget(0)
	}
	return NewBudget(lim / 5 * 4)
}

// ParseBytes converts a human byte-size flag value ("512MiB", "2GB", "1g",
// "1048576") into bytes. The units are case-insensitive; both IEC (KiB, MiB,
// GiB, TiB) and metric-looking suffixes (KB/K, MB/M, GB/G, TB/T) are read as
// powers of 1024 — operators setting memory limits invariably mean the
// binary unit.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("govern: empty byte size")
	}
	shift := 0
	suffixes := []struct {
		text  string
		shift int
	}{
		{"kib", 10}, {"mib", 20}, {"gib", 30}, {"tib", 40},
		{"kb", 10}, {"mb", 20}, {"gb", 30}, {"tb", 40},
		{"k", 10}, {"m", 20}, {"g", 30}, {"t", 40},
		{"b", 0},
	}
	for _, suf := range suffixes { // longest first, so "mib" wins over "b"
		if strings.HasSuffix(t, suf.text) && len(t) > len(suf.text) {
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.text))
			shift = suf.shift
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("govern: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("govern: negative byte size %q", s)
	}
	return int64(v * float64(int64(1)<<shift)), nil
}
