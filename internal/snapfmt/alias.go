package snapfmt

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittle reports whether this host is little-endian — the format's byte
// order, and the precondition for zero-copy aliasing. Big-endian hosts fall
// back to copying decodes and element-wise encodes.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aligned8 reports whether b's base address is 8-byte aligned (the
// strictest element alignment in the format). mmap'd buffers always are;
// arbitrary test buffers occasionally are not, in which case decode copies.
func aligned8(b []byte) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0
}

// descSize is the wire (and in-memory) size of a PostingDesc.
const descSize = 16

// ---- encode views: []T → []byte ------------------------------------------
//
// On little-endian hosts these return a zero-copy view of the slice memory;
// otherwise they serialize element-wise. Callers must not mutate the result.

func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

func u64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}

func u32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], x)
	}
	return out
}

func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

func descBytes(v []PostingDesc) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*descSize)
	}
	out := make([]byte, len(v)*descSize)
	for i, d := range v {
		b := out[i*descSize:]
		binary.LittleEndian.PutUint32(b[0:], d.Off)
		binary.LittleEndian.PutUint32(b[4:], d.Len)
		binary.LittleEndian.PutUint32(b[8:], d.N)
		binary.LittleEndian.PutUint32(b[12:], d.Kind)
	}
	return out
}

// ---- decode views: []byte → []T ------------------------------------------
//
// Length validity (len(b) % elemSize == 0) is the caller's responsibility.
// On little-endian hosts with aligned input these alias b; otherwise they
// decode into fresh slices.

func bytesF64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func bytesU64(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func bytesU32(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func bytesI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func bytesDescs(b []byte) []PostingDesc {
	n := len(b) / descSize
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(b) {
		return unsafe.Slice((*PostingDesc)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]PostingDesc, n)
	for i := range out {
		d := b[i*descSize:]
		out[i] = PostingDesc{
			Off:  binary.LittleEndian.Uint32(d[0:]),
			Len:  binary.LittleEndian.Uint32(d[4:]),
			N:    binary.LittleEndian.Uint32(d[8:]),
			Kind: binary.LittleEndian.Uint32(d[12:]),
		}
	}
	return out
}
