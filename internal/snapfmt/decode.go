package snapfmt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"negmine/internal/fault"
)

// ErrFormat is the sentinel every structural decode failure wraps: bad
// magic, unknown version, truncation, checksum mismatch, inconsistent
// counts. Callers distinguish "this is not a usable snapshot" (fall back to
// mining) from I/O errors with errors.Is.
var ErrFormat = errors.New("invalid snapshot file")

func formatErrf(format string, args ...any) error {
	return fmt.Errorf("snapfmt: "+format+": %w", append(args, ErrFormat)...)
}

// DecodeHeader parses and verifies only the fixed header and section table
// — the lenient entry point inspection tooling uses so a file with a
// corrupted payload can still be described.
func DecodeHeader(data []byte) (Header, []SectionInfo, error) {
	if len(data) < headerSize {
		return Header{}, nil, formatErrf("%d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if got := binary.LittleEndian.Uint32(data[0:]); got != Magic {
		return Header{}, nil, formatErrf("bad magic %#08x (want %#08x)", got, Magic)
	}
	if crc := crc32.Checksum(data[:60], castagnoli); crc != binary.LittleEndian.Uint32(data[60:]) {
		return Header{}, nil, formatErrf("header checksum mismatch")
	}
	h := Header{
		Version:    binary.LittleEndian.Uint32(data[4:]),
		Generation: binary.LittleEndian.Uint64(data[8:]),
		CreatedNs:  int64(binary.LittleEndian.Uint64(data[16:])),
		FileSize:   binary.LittleEndian.Uint64(data[24:]),
		Sections:   int(binary.LittleEndian.Uint32(data[32:])),
	}
	if h.Version != Version {
		return Header{}, nil, formatErrf("unsupported version %d (this reader speaks %d)", h.Version, Version)
	}
	if h.FileSize != uint64(len(data)) {
		return Header{}, nil, formatErrf("header says %d bytes, file has %d (truncated or grown)", h.FileSize, len(data))
	}
	tableEnd := uint64(headerSize) + uint64(h.Sections)*sectionSize
	if h.Sections < 0 || tableEnd > uint64(len(data)) {
		return Header{}, nil, formatErrf("section table (%d entries) exceeds the file", h.Sections)
	}
	tb := data[headerSize:tableEnd]
	if crc := crc32.Checksum(tb, castagnoli); crc != binary.LittleEndian.Uint32(data[56:]) {
		return Header{}, nil, formatErrf("section-table checksum mismatch")
	}
	table := make([]SectionInfo, h.Sections)
	for i := range table {
		b := tb[i*sectionSize:]
		table[i] = SectionInfo{
			Kind:   SectionKind(binary.LittleEndian.Uint32(b[0:])),
			Offset: binary.LittleEndian.Uint64(b[8:]),
			Length: binary.LittleEndian.Uint64(b[16:]),
			CRC:    binary.LittleEndian.Uint32(b[24:]),
		}
	}
	return h, table, nil
}

// sectionBytes bounds-checks one table entry against the file and returns
// its payload bytes.
func sectionBytes(data []byte, e SectionInfo) ([]byte, error) {
	if e.Offset%8 != 0 {
		return nil, formatErrf("section %s at unaligned offset %d", e.Kind.Name(), e.Offset)
	}
	end := e.Offset + e.Length
	if end < e.Offset || end > uint64(len(data)) {
		return nil, formatErrf("section %s [%d, %d) exceeds the %d-byte file", e.Kind.Name(), e.Offset, end, len(data))
	}
	return data[e.Offset:end:end], nil
}

// SectionStatus is one section's verification result from Check.
type SectionStatus struct {
	SectionInfo
	OK  bool
	Err string // empty when OK
}

// CheckReport is the per-section verification result (nmtx snap verify).
type CheckReport struct {
	Header     Header
	Sections   []SectionStatus
	Structural string // non-empty when checksums pass but validation fails
	OK         bool
}

// Check verifies every section checksum plus the full structural
// validation, reporting per-section status instead of failing on the first
// problem. A nil error means the file could be parsed far enough to check;
// report.OK says whether it is a valid snapshot.
func Check(data []byte) (*CheckReport, error) {
	h, table, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	rep := &CheckReport{Header: h, OK: true}
	for _, e := range table {
		st := SectionStatus{SectionInfo: e, OK: true}
		b, err := sectionBytes(data, e)
		switch {
		case err != nil:
			st.OK, st.Err = false, err.Error()
		case crc32.Checksum(b, castagnoli) != e.CRC:
			st.OK, st.Err = false, "checksum mismatch"
		}
		if !st.OK {
			rep.OK = false
		}
		rep.Sections = append(rep.Sections, st)
	}
	if rep.OK {
		// Checksums pass; run the structural validation too, so a
		// well-checksummed but internally inconsistent file is flagged.
		if _, err := Decode(data); err != nil {
			rep.OK = false
			rep.Structural = err.Error()
		}
	}
	return rep, nil
}

// Decode parses, checksums and validates data and returns the Image. On
// little-endian hosts the image's slices alias data — the caller must keep
// data alive (and unmodified) for the image's lifetime; this is what makes
// serving straight off an mmap possible. Every error wraps ErrFormat.
func Decode(data []byte) (*Image, error) {
	if err := fault.Hit(PointDecode); err != nil {
		return nil, err
	}
	h, table, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	img := &Image{Header: h}

	// Collect required sections, verifying each checksum. Unknown kinds are
	// ignored (additive evolution); duplicate known kinds are an error.
	secs := map[SectionKind][]byte{}
	for _, e := range table {
		if e.Kind == 0 || e.Kind >= secKindEnd {
			continue
		}
		if _, dup := secs[e.Kind]; dup {
			return nil, formatErrf("duplicate section %s", e.Kind.Name())
		}
		b, err := sectionBytes(data, e)
		if err != nil {
			return nil, err
		}
		if crc32.Checksum(b, castagnoli) != e.CRC {
			return nil, formatErrf("section %s checksum mismatch", e.Kind.Name())
		}
		secs[e.Kind] = b
	}
	get := func(kind SectionKind, elem int) ([]byte, error) {
		b, ok := secs[kind]
		if !ok {
			return nil, formatErrf("missing section %s", kind.Name())
		}
		if elem > 1 && len(b)%elem != 0 {
			return nil, formatErrf("section %s: %d bytes is not a multiple of %d", kind.Name(), len(b), elem)
		}
		return b, nil
	}

	// Meta.
	mb, err := get(SecMeta, 1)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(mb, &img.Meta); err != nil {
		return nil, formatErrf("meta section: %v", err)
	}

	// Typed sections.
	load := []struct {
		kind SectionKind
		elem int
		set  func([]byte)
	}{
		{SecRI, 8, func(b []byte) { img.RI = bytesF64(b) }},
		{SecExpected, 8, func(b []byte) { img.Expected = bytesF64(b) }},
		{SecActual, 8, func(b []byte) { img.Actual = bytesF64(b) }},
		{SecOff, 4, func(b []byte) { img.Off = bytesU32(b) }},
		{SecSideIDs, 4, func(b []byte) { img.SideIDs = bytesI32(b) }},
		{SecNameOffs, 4, func(b []byte) { img.NameOffs = bytesU32(b) }},
		{SecNameBlob, 1, func(b []byte) { img.NameBlob = b }},
		{SecAncOff, 4, func(b []byte) { img.AncOff = bytesU32(b) }},
		{SecAncIDs, 4, func(b []byte) { img.AncIDs = bytesI32(b) }},
		{SecAnteDesc, descSize, func(b []byte) { img.Ante.Descs = bytesDescs(b) }},
		{SecAnteIDs, 4, func(b []byte) { img.Ante.IDs = bytesI32(b) }},
		{SecAnteWords, 8, func(b []byte) { img.Ante.Words = bytesU64(b) }},
		{SecConsDesc, descSize, func(b []byte) { img.Cons.Descs = bytesDescs(b) }},
		{SecConsIDs, 4, func(b []byte) { img.Cons.IDs = bytesI32(b) }},
		{SecConsWords, 8, func(b []byte) { img.Cons.Words = bytesU64(b) }},
		{SecReachDesc, descSize, func(b []byte) { img.Reach.Descs = bytesDescs(b) }},
		{SecReachIDs, 4, func(b []byte) { img.Reach.IDs = bytesI32(b) }},
		{SecReachWords, 8, func(b []byte) { img.Reach.Words = bytesU64(b) }},
	}
	for _, l := range load {
		b, err := get(l.kind, l.elem)
		if err != nil {
			return nil, err
		}
		l.set(b)
	}

	if err := img.validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// validate checks every structural invariant the serving layer depends on,
// so a decoded image can be indexed and queried without further bounds
// checks. Checksums catch random corruption; this catches truncation that
// happens to checksum, buggy writers, and adversarial input (the fuzz
// target drives arbitrary bytes through Decode).
func (img *Image) validate() error {
	n := len(img.RI)
	if len(img.Expected) != n || len(img.Actual) != n {
		return formatErrf("rule slices disagree: ri=%d expected=%d actual=%d",
			n, len(img.Expected), len(img.Actual))
	}
	if len(img.Off) != 2*n+1 {
		return formatErrf("off has %d entries, want %d for %d rules", len(img.Off), 2*n+1, n)
	}
	if len(img.NameOffs) == 0 {
		return formatErrf("empty name-offs section")
	}
	m := len(img.NameOffs) - 1
	if img.Meta.Rules != n || img.Meta.Items != m {
		return formatErrf("meta counts (rules=%d items=%d) disagree with sections (rules=%d items=%d)",
			img.Meta.Rules, img.Meta.Items, n, m)
	}
	if !validRI(img.RI) {
		return formatErrf("rule interest is not NaN-free descending")
	}
	if err := monotonic("off", img.Off, len(img.SideIDs)); err != nil {
		return err
	}
	if img.Off[0] != 0 {
		return formatErrf("off does not start at 0")
	}
	if img.Off[2*n] != uint32(len(img.SideIDs)) {
		return formatErrf("off ends at %d, want %d (side-ids length)", img.Off[2*n], len(img.SideIDs))
	}
	for _, id := range img.SideIDs {
		if id < 0 || int(id) >= m {
			return formatErrf("side item id %d out of range [0, %d)", id, m)
		}
	}
	if err := monotonic("name-offs", img.NameOffs, len(img.NameBlob)); err != nil {
		return err
	}
	if img.NameOffs[0] != 0 || img.NameOffs[m] != uint32(len(img.NameBlob)) {
		return formatErrf("name-offs does not span the name blob")
	}
	if len(img.AncOff) != m+1 {
		return formatErrf("anc-off has %d entries, want %d", len(img.AncOff), m+1)
	}
	if err := monotonic("anc-off", img.AncOff, len(img.AncIDs)); err != nil {
		return err
	}
	if img.AncOff[0] != 0 || img.AncOff[m] != uint32(len(img.AncIDs)) {
		return formatErrf("anc-off does not span anc-ids")
	}
	for _, a := range img.AncIDs {
		if a < 0 || int(a) >= m {
			return formatErrf("ancestor id %d out of range [0, %d)", a, m)
		}
	}
	ruleWords := (n + 63) / 64
	for _, idx := range []struct {
		name string
		pi   *PostingIndex
	}{{"ante", &img.Ante}, {"cons", &img.Cons}, {"reach", &img.Reach}} {
		if len(idx.pi.Descs) != m {
			return formatErrf("%s index has %d descriptors, want %d", idx.name, len(idx.pi.Descs), m)
		}
		for i, d := range idx.pi.Descs {
			switch d.Kind {
			case PostingEmpty:
				if d.Off != 0 || d.Len != 0 || d.N != 0 {
					return formatErrf("%s[%d]: non-zero empty posting", idx.name, i)
				}
			case PostingSparse:
				end := uint64(d.Off) + uint64(d.Len)
				if end > uint64(len(idx.pi.IDs)) {
					return formatErrf("%s[%d]: sparse posting [%d, %d) exceeds backing (%d ids)",
						idx.name, i, d.Off, end, len(idx.pi.IDs))
				}
				if d.N != d.Len || d.Len == 0 {
					return formatErrf("%s[%d]: sparse posting n=%d len=%d", idx.name, i, d.N, d.Len)
				}
				ids := idx.pi.IDs[d.Off:end]
				prev := int32(-1)
				for _, id := range ids {
					if id <= prev || int(id) >= n {
						return formatErrf("%s[%d]: sparse ids not ascending in [0, %d)", idx.name, i, n)
					}
					prev = id
				}
			case PostingDense:
				end := uint64(d.Off) + uint64(d.Len)
				if end > uint64(len(idx.pi.Words)) {
					return formatErrf("%s[%d]: dense posting [%d, %d) exceeds backing (%d words)",
						idx.name, i, d.Off, end, len(idx.pi.Words))
				}
				if int(d.Len) > ruleWords || d.Len == 0 {
					return formatErrf("%s[%d]: dense posting %d words, max %d", idx.name, i, d.Len, ruleWords)
				}
				var pop uint32
				words := idx.pi.Words[d.Off:end]
				for _, w := range words {
					pop += uint32(popcount(w))
				}
				// The last word's bits beyond rule n-1 must be clear: queries
				// rely on never selecting a rule id ≥ n.
				if hi := n - int(d.Len-1)*64; hi < 64 {
					if words[len(words)-1]>>uint(hi) != 0 {
						return formatErrf("%s[%d]: dense posting has bits beyond rule %d", idx.name, i, n-1)
					}
				}
				if pop != d.N || words[len(words)-1] == 0 {
					return formatErrf("%s[%d]: dense posting popcount %d ≠ n %d (or untrimmed)", idx.name, i, pop, d.N)
				}
			default:
				return formatErrf("%s[%d]: unknown posting kind %d", idx.name, i, d.Kind)
			}
		}
	}
	return nil
}

// monotonic checks a non-decreasing offset array whose values stay ≤ max.
func monotonic(name string, offs []uint32, max int) error {
	prev := uint32(0)
	for _, o := range offs {
		if o < prev || int(o) > max {
			return formatErrf("%s offsets not monotonic within [0, %d]", name, max)
		}
		prev = o
	}
	return nil
}

func popcount(w uint64) int {
	c := 0
	for ; w != 0; w &= w - 1 {
		c++
	}
	return c
}
