package snapfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"negmine/internal/fault"
)

// testImage builds a small, fully consistent snapshot image by hand:
// 5 items (apple, beer, bread, drinks, food; beer→drinks→food in the
// taxonomy) and 3 rules, with sparse, dense, empty and shared postings all
// represented.
func testImage() *Image {
	img := &Image{
		Header: Header{Generation: 7, CreatedNs: 1_700_000_000_000_000_000},
		Meta: Meta{
			Tool: "test", Source: "synthetic",
			MinSupport: 0.01, MinRI: 1.5,
		},
		RI:       []float64{5, 3.5, 3.5},
		Expected: []float64{0.1, 0.2, 0.3},
		Actual:   []float64{0.5, 0.7, 0.9},
		Off:      []uint32{0, 1, 2, 4, 5, 6, 7},
		SideIDs:  []int32{0, 1, 1, 2, 0, 2, 4},
		NameOffs: []uint32{0, 5, 9, 14, 20, 24},
		NameBlob: []byte("applebeerbreaddrinksfood"),
		AncOff:   []uint32{0, 0, 2, 2, 3, 3},
		AncIDs:   []int32{3, 4, 4},
		Ante: PostingIndex{
			Descs: []PostingDesc{
				{Off: 0, Len: 1, N: 1, Kind: PostingSparse},
				{Off: 1, Len: 1, N: 1, Kind: PostingSparse},
				{Off: 2, Len: 2, N: 2, Kind: PostingSparse},
				{Kind: PostingEmpty},
				{Kind: PostingEmpty},
			},
			IDs: []int32{0, 1, 1, 2},
		},
		Cons: PostingIndex{
			Descs: []PostingDesc{
				{Off: 0, Len: 1, N: 1, Kind: PostingSparse},
				{Off: 1, Len: 1, N: 1, Kind: PostingSparse},
				{Kind: PostingEmpty},
				{Kind: PostingEmpty},
				{Off: 2, Len: 1, N: 1, Kind: PostingSparse},
			},
			IDs: []int32{1, 0, 2},
		},
		Reach: PostingIndex{
			Descs: []PostingDesc{
				{Off: 0, Len: 2, N: 2, Kind: PostingSparse},
				{Off: 0, Len: 1, N: 2, Kind: PostingDense}, // shares words[0] with drinks
				{Off: 2, Len: 2, N: 2, Kind: PostingSparse},
				{Off: 0, Len: 1, N: 2, Kind: PostingDense},
				{Off: 1, Len: 1, N: 3, Kind: PostingDense},
			},
			IDs:   []int32{0, 1, 1, 2},
			Words: []uint64{0b011, 0b111},
		},
	}
	return img
}

func encode(t *testing.T, img *Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// reseal recomputes every checksum in data after a test mutated a payload,
// so structural validation (not CRC) is what rejects the file.
func reseal(data []byte) {
	n := int(binary.LittleEndian.Uint32(data[32:]))
	for i := 0; i < n; i++ {
		e := data[headerSize+i*sectionSize:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := crc32.Checksum(data[off:off+length], castagnoli)
		binary.LittleEndian.PutUint32(e[24:], crc)
	}
	tb := data[headerSize : headerSize+n*sectionSize]
	binary.LittleEndian.PutUint32(data[56:], crc32.Checksum(tb, castagnoli))
	binary.LittleEndian.PutUint32(data[60:], crc32.Checksum(data[:60], castagnoli))
}

func TestRoundTrip(t *testing.T) {
	img := testImage()
	data := encode(t, img)

	if size, err := EncodedSize(img); err != nil || size != int64(len(data)) {
		t.Fatalf("EncodedSize = %d, %v; encoded %d bytes", size, err, len(data))
	}

	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.Generation != 7 || got.Header.CreatedNs != img.Header.CreatedNs {
		t.Errorf("header round-trip: got %+v", got.Header)
	}
	if got.Header.Version != Version || got.Header.FileSize != uint64(len(data)) {
		t.Errorf("header version/size: got %+v", got.Header)
	}
	wantMeta := img.Meta
	wantMeta.Rules, wantMeta.Items = 3, 5
	if got.Meta != wantMeta {
		t.Errorf("meta round-trip: got %+v want %+v", got.Meta, wantMeta)
	}
	checks := []struct {
		name      string
		got, want any
	}{
		{"RI", got.RI, img.RI},
		{"Expected", got.Expected, img.Expected},
		{"Actual", got.Actual, img.Actual},
		{"Off", got.Off, img.Off},
		{"SideIDs", got.SideIDs, img.SideIDs},
		{"NameOffs", got.NameOffs, img.NameOffs},
		{"NameBlob", got.NameBlob, img.NameBlob},
		{"AncOff", got.AncOff, img.AncOff},
		{"AncIDs", got.AncIDs, img.AncIDs},
		{"Ante.Descs", got.Ante.Descs, img.Ante.Descs},
		{"Ante.IDs", got.Ante.IDs, img.Ante.IDs},
		{"Cons.Descs", got.Cons.Descs, img.Cons.Descs},
		{"Cons.IDs", got.Cons.IDs, img.Cons.IDs},
		{"Reach.Descs", got.Reach.Descs, img.Reach.Descs},
		{"Reach.IDs", got.Reach.IDs, img.Reach.IDs},
		{"Reach.Words", got.Reach.Words, img.Reach.Words},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s round-trip: got %v want %v", c.name, c.got, c.want)
		}
	}
	if got.NumRules() != 3 || got.NumItems() != 5 {
		t.Errorf("counts: %d rules %d items", got.NumRules(), got.NumItems())
	}
	if got.Name(3) != "drinks" {
		t.Errorf("Name(3) = %q", got.Name(3))
	}
	ante, cons := got.RuleSides(1)
	if !reflect.DeepEqual(ante, []int32{1, 2}) || !reflect.DeepEqual(cons, []int32{0}) {
		t.Errorf("RuleSides(1) = %v ⇒ %v", ante, cons)
	}
	if lo, hi := got.RIRange(); lo != 3.5 || hi != 5 {
		t.Errorf("RIRange = %v, %v", lo, hi)
	}
}

func TestEmptyImageRoundTrip(t *testing.T) {
	img := &Image{
		Header:   Header{Generation: 1},
		Off:      []uint32{0},
		NameOffs: []uint32{0},
		AncOff:   []uint32{0},
	}
	data := encode(t, img)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode empty image: %v", err)
	}
	if got.NumRules() != 0 || got.NumItems() != 0 {
		t.Errorf("counts: %d rules %d items", got.NumRules(), got.NumItems())
	}
}

func TestOpenFile(t *testing.T) {
	img := testImage()
	path := filepath.Join(t.TempDir(), "snap.nsnap")
	if err := WriteFile(path, img); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Image.NumRules() != 3 || f.Image.Header.Generation != 7 {
		t.Errorf("opened image: %d rules gen %d", f.Image.NumRules(), f.Image.Header.Generation)
	}
	if f.Size() != int64(len(f.Bytes())) {
		t.Errorf("Size %d != len(Bytes) %d", f.Size(), len(f.Bytes()))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCorruptionMatrix flips one bit in every section payload, truncates the
// file at several boundaries, and mangles the fixed header — every mutation
// must be rejected, and none may panic.
func TestCorruptionMatrix(t *testing.T) {
	pristine := encode(t, testImage())
	if _, err := Decode(pristine); err != nil {
		t.Fatalf("pristine image must decode: %v", err)
	}
	_, table, err := DecodeHeader(pristine)
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}

	mutate := func(name string, f func(b []byte)) {
		b := bytes.Clone(pristine)
		f(b)
		if bytes.Equal(b, pristine) {
			return // mutation was a no-op (e.g. empty section)
		}
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: corrupted file decoded successfully", name)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: error does not wrap ErrFormat: %v", name, err)
		}
	}

	// One bit flip inside every non-empty section payload.
	for _, e := range table {
		if e.Length == 0 {
			continue
		}
		mutate("bit flip in "+e.Kind.Name(), func(b []byte) {
			b[e.Offset+e.Length/2] ^= 0x10
		})
	}

	// Header field corruption.
	mutate("bad magic", func(b []byte) { b[0] ^= 0xff })
	mutate("bad version", func(b []byte) {
		binary.LittleEndian.PutUint32(b[4:], Version+1)
		reseal(b)
	})
	mutate("bad file size", func(b []byte) {
		binary.LittleEndian.PutUint64(b[24:], uint64(len(b))+8)
		reseal(b)
	})
	mutate("header bit flip", func(b []byte) { b[17] ^= 0x01 })
	mutate("table bit flip", func(b []byte) { b[headerSize+9] ^= 0x01 })
	mutate("table crc flip", func(b []byte) { b[56] ^= 0x01 })

	// Truncations: mid-header, mid-table, mid-payload, one byte short.
	for _, cut := range []int{0, 1, 13, headerSize - 1, headerSize + 5,
		len(pristine) / 2, len(pristine) - 1} {
		b := pristine[:cut]
		if _, err := Decode(b); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}

	// Structural corruption that re-checksums cleanly: CRCs pass, the
	// validator must still reject.
	structural := []struct {
		name string
		f    func(img *Image)
	}{
		{"ascending RI", func(img *Image) { img.RI[2] = 99 }},
		{"NaN RI", func(img *Image) { img.RI[0] = math.NaN() }},
		{"side id out of range", func(img *Image) { img.SideIDs[0] = 5 }},
		{"negative side id", func(img *Image) { img.SideIDs[0] = -1 }},
		{"off not monotonic", func(img *Image) { img.Off[1] = 6 }},
		{"off overshoots", func(img *Image) { img.Off[6] = 99 }},
		{"name offs overshoot", func(img *Image) { img.NameOffs[5] = 99 }},
		{"ancestor id out of range", func(img *Image) { img.AncIDs[0] = 17 }},
		{"sparse ids descending", func(img *Image) { img.Ante.IDs[2], img.Ante.IDs[3] = 2, 1 }},
		{"sparse id out of range", func(img *Image) { img.Ante.IDs[0] = 3 }},
		{"desc overshoots backing", func(img *Image) { img.Ante.Descs[0].Len = 9; img.Ante.Descs[0].N = 9 }},
		{"dense popcount mismatch", func(img *Image) { img.Reach.Descs[4].N = 2 }},
		{"dense stray high bit", func(img *Image) { img.Reach.Words[1] = 0b1111 }},
		{"unknown posting kind", func(img *Image) { img.Cons.Descs[0].Kind = 9 }},
		{"non-zero empty posting", func(img *Image) { img.Ante.Descs[3].Off = 1 }},
	}
	for _, sc := range structural {
		img := testImage()
		sc.f(img)
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			continue // encoder itself refused; also fine
		}
		if _, err := Decode(buf.Bytes()); err == nil {
			t.Errorf("structural %s: decoded successfully", sc.name)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("structural %s: error does not wrap ErrFormat: %v", sc.name, err)
		}
	}
}

func TestCheckReportsBadSection(t *testing.T) {
	data := encode(t, testImage())
	rep, err := Check(data)
	if err != nil || !rep.OK {
		t.Fatalf("pristine Check: %+v, %v", rep, err)
	}
	_, table, _ := DecodeHeader(data)
	// Corrupt the RI payload; Check must flag exactly that section.
	var ri SectionInfo
	for _, e := range table {
		if e.Kind == SecRI {
			ri = e
		}
	}
	bad := bytes.Clone(data)
	bad[ri.Offset] ^= 0x01
	rep, err = Check(bad)
	if err != nil {
		t.Fatalf("Check on corrupt payload: %v", err)
	}
	if rep.OK {
		t.Fatal("Check passed a corrupt file")
	}
	var flagged []string
	for _, s := range rep.Sections {
		if !s.OK {
			flagged = append(flagged, s.Kind.Name())
		}
	}
	if len(flagged) != 1 || flagged[0] != "ri" {
		t.Errorf("flagged sections = %v, want [ri]", flagged)
	}

	// Structural-only corruption: every checksum fine, validation fails.
	img := testImage()
	img.RI[2] = 99
	rep, err = Check(encode(t, img))
	if err != nil {
		t.Fatalf("Check structural: %v", err)
	}
	if rep.OK || rep.Structural == "" {
		t.Errorf("structural corruption not reported: %+v", rep)
	}
}

func TestDecodeUnaligned(t *testing.T) {
	data := encode(t, testImage())
	// Force a misaligned base address; Decode must fall back to copying and
	// still produce an identical image.
	buf := make([]byte, len(data)+1)
	copy(buf[1:], data)
	img, err := Decode(buf[1:])
	if err != nil {
		t.Fatalf("Decode misaligned: %v", err)
	}
	if !reflect.DeepEqual(img.RI, []float64{5, 3.5, 3.5}) {
		t.Errorf("misaligned RI = %v", img.RI)
	}
}

func TestIgnoresUnknownSection(t *testing.T) {
	// Append an unknown section kind; a same-version reader must skip it.
	img := testImage()
	data := encode(t, img)
	_, table, _ := DecodeHeader(data)

	payload := []byte("future payload!!")
	n := len(table) + 1
	var buf bytes.Buffer
	hb := make([]byte, headerSize)
	copy(hb, data[:headerSize])
	tb := make([]byte, n*sectionSize)
	copy(tb, data[headerSize:headerSize+len(table)*sectionSize])
	// Existing payload offsets shift by one table entry (32 bytes), which
	// keeps 8-alignment intact.
	shift := uint64(sectionSize)
	for i := 0; i < len(table); i++ {
		e := tb[i*sectionSize:]
		binary.LittleEndian.PutUint64(e[8:], table[i].Offset+shift)
	}
	last := tb[len(table)*sectionSize:]
	newOff := pad8(uint64(len(data)) + shift)
	binary.LittleEndian.PutUint32(last[0:], uint32(secKindEnd)+100)
	binary.LittleEndian.PutUint64(last[8:], newOff)
	binary.LittleEndian.PutUint64(last[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(last[24:], crc32.Checksum(payload, castagnoli))

	fileSize := newOff + uint64(len(payload))
	binary.LittleEndian.PutUint64(hb[24:], fileSize)
	binary.LittleEndian.PutUint32(hb[32:], uint32(n))
	binary.LittleEndian.PutUint32(hb[56:], crc32.Checksum(tb, castagnoli))
	binary.LittleEndian.PutUint32(hb[60:], crc32.Checksum(hb[:60], castagnoli))

	buf.Write(hb)
	buf.Write(tb)
	buf.Write(data[headerSize+len(table)*sectionSize:])
	for uint64(buf.Len()) < newOff {
		buf.WriteByte(0)
	}
	buf.Write(payload)

	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if got.NumRules() != 3 {
		t.Errorf("rules = %d", got.NumRules())
	}
}

func TestEncodeFailpoint(t *testing.T) {
	defer fault.Enable(PointEncode, fault.Error("writer died"), fault.After(2))()
	var buf bytes.Buffer
	err := Encode(&buf, testImage())
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Encode under failpoint: %v", err)
	}
}

func TestDecodeFailpoint(t *testing.T) {
	data := encode(t, testImage())
	defer fault.Enable(PointDecode, fault.Error("bad snapshot"))()
	if _, err := Decode(data); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Decode under failpoint: %v", err)
	}
}

func TestMmapFailpoint(t *testing.T) {
	img := testImage()
	path := filepath.Join(t.TempDir(), "snap.nsnap")
	if err := WriteFile(path, img); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	defer fault.Enable(PointMmap, fault.Error("map failed"))()
	if _, err := Open(path); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Open under failpoint: %v", err)
	}
}
