package snapfmt

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode drives arbitrary bytes through the validating decoder.
// The invariant: Decode never panics, and when it accepts an input, every
// accessor the serving layer relies on is in-bounds without further checks.
func FuzzSnapshotDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, testImage()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("NSNP"))
	// A couple of single-byte mutants to seed the corpus near validity.
	for _, i := range []int{5, 33, 70, len(valid) - 9} {
		m := bytes.Clone(valid)
		m[i] ^= 0xff
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted: exercise every access pattern queries perform.
		n, m := img.NumRules(), img.NumItems()
		for i := 0; i < n; i++ {
			ante, cons := img.RuleSides(i)
			for _, id := range ante {
				_ = img.Name(int(id))
			}
			for _, id := range cons {
				_ = img.Name(int(id))
			}
			_ = img.RI[i] + img.Expected[i] + img.Actual[i]
		}
		for i := 0; i < m; i++ {
			_ = img.Name(i)
			for _, a := range img.AncIDs[img.AncOff[i]:img.AncOff[i+1]] {
				_ = img.Name(int(a))
			}
		}
		for _, idx := range []*PostingIndex{&img.Ante, &img.Cons, &img.Reach} {
			for _, d := range idx.Descs {
				switch d.Kind {
				case PostingSparse:
					for _, id := range idx.IDs[d.Off : d.Off+d.Len] {
						_ = img.RI[id]
					}
				case PostingDense:
					words := idx.Words[d.Off : d.Off+d.Len]
					for wi, w := range words {
						for ; w != 0; w &= w - 1 {
							// lowest set bit index must be a valid rule id
							bit := 0
							for m := w & (^w + 1); m > 1; m >>= 1 {
								bit++
							}
							id := wi*64 + bit
							_ = img.RI[id]
						}
					}
				}
			}
		}
		_, _ = img.RIRange()
		if _, _, err := DecodeHeader(data); err != nil {
			t.Fatalf("Decode accepted but DecodeHeader rejects: %v", err)
		}
	})
}
