package snapfmt

import "sync"

// File is an open, validated snapshot file: the mapped (or read) bytes plus
// the decoded Image aliasing them. Close unmaps the bytes; everything
// derived from the Image must be dropped first.
type File struct {
	Image *Image

	data   []byte
	mapped bool

	mu     sync.Mutex
	closed bool
}

// Open maps (or reads) path, decodes and fully validates it, and returns
// the open file. Any validation failure unmaps and returns an error wrapping
// ErrFormat, so a corrupted or torn snapshot can never be served.
func Open(path string) (*File, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	img, err := Decode(data)
	if err != nil {
		if mapped {
			unmap(data)
		}
		return nil, err
	}
	return &File{Image: img, data: data, mapped: mapped}, nil
}

// Size returns the open file's length in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Bytes returns the raw file bytes (valid until Close).
func (f *File) Bytes() []byte { return f.data }

// Close releases the mapping. Idempotent. The Image and every slice derived
// from it become invalid — callers tie Close to the lifetime of whatever
// serves from the image (e.g. via a finalizer on the serving snapshot).
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.mapped {
		err := unmap(f.data)
		f.data = nil
		return err
	}
	f.data = nil
	return nil
}
