// Package snapfmt defines the .nsnap binary snapshot format: a versioned,
// checksummed, little-endian, section-based encoding of the serving layer's
// flat rule arena (struct-of-arrays rule slices, interned item dictionary,
// compressed bitmap posting lists) laid out so a file can be mmap'd and
// served zero-copy. Decode validates the header, every section checksum and
// every structural invariant, then returns an Image whose slices alias the
// mapped bytes — no per-rule parsing, no copies of the payload. A daemon
// restart therefore costs one mmap plus one checksum pass instead of a full
// re-mine, and any number of replicas mapping the same file share its page
// cache.
//
// # File layout
//
//	offset 0    header, 64 bytes (magic, version, generation, created,
//	            file size, section count, table CRC, header CRC)
//	offset 64   section table: one 32-byte entry per section
//	            (kind, offset, length, CRC32-C of the payload)
//	then        section payloads, each 8-byte aligned, zero-padded between
//
// All integers are little-endian. Section payloads are raw element arrays
// ([]float64, []uint32, []int32, []uint64, posting descriptors) exactly as
// the serving arena holds them in memory, which is what makes aliasing
// possible on little-endian hosts; big-endian hosts transparently fall back
// to a copying decode.
//
// # Versioning and compatibility
//
// The header carries a single format version. A reader rejects files whose
// version it does not know. Within a version, unknown section kinds are
// ignored (additive evolution: a newer writer may append new sections that
// an older reader skips), while the required sections of the version must
// each appear exactly once. Any layout change that would misparse old
// readers bumps the version.
package snapfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"negmine/internal/atomicio"
	"negmine/internal/fault"
)

// Failpoints threaded through the codec (see internal/fault).
const (
	// PointEncode fires before every section payload written by Encode; an
	// error action models a writer killed mid-stream (with atomicio the
	// destination file must stay untouched).
	PointEncode = "snapfmt.encode"
	// PointDecode fires at the top of Decode; an error action models a
	// snapshot file that fails validation, forcing the load fallback path.
	PointDecode = "snapfmt.decode"
	// PointMmap fires in Open before the file is mapped; an error action
	// models a map failure (exhausted address space, filesystem error).
	PointMmap = "snapfmt.mmap"
)

// Magic identifies a .nsnap file: the bytes "NSNP" read as a little-endian
// uint32.
const Magic uint32 = 'N' | 'S'<<8 | 'N'<<16 | 'P'<<24

// Version is the current format version written by Encode.
const Version uint32 = 1

// Header sizes, fixed by the format.
const (
	headerSize  = 64
	sectionSize = 32
)

// castagnoli is the CRC-32C table used for every checksum in the format
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionKind identifies one section's payload type.
type SectionKind uint32

// The sections of format version 1. Every kind is required (zero length is
// fine); unknown kinds are ignored by readers of the same version.
const (
	SecMeta       SectionKind = 1 + iota // JSON Meta document
	SecRI                                // []float64, rule interest per rule, descending
	SecExpected                          // []float64, expected support per rule
	SecActual                            // []float64, actual support per rule
	SecOff                               // []uint32, 2n+1 side offsets into SideIDs
	SecSideIDs                           // []int32, flattened rule sides (interned ids)
	SecNameOffs                          // []uint32, m+1 offsets into NameBlob
	SecNameBlob                          // raw bytes, concatenated item names
	SecAncOff                            // []uint32, m+1 offsets into AncIDs
	SecAncIDs                            // []int32, flattened ancestor chains
	SecAnteDesc                          // []PostingDesc, antecedent index
	SecAnteIDs                           // []int32, antecedent sparse backing
	SecAnteWords                         // []uint64, antecedent dense backing
	SecConsDesc                          // []PostingDesc, consequent index
	SecConsIDs                           // []int32
	SecConsWords                         // []uint64
	SecReachDesc                         // []PostingDesc, taxonomy-reach index
	SecReachIDs                          // []int32
	SecReachWords                        // []uint64
	secKindEnd
)

var sectionNames = map[SectionKind]string{
	SecMeta: "meta", SecRI: "ri", SecExpected: "expected", SecActual: "actual",
	SecOff: "off", SecSideIDs: "side-ids", SecNameOffs: "name-offs",
	SecNameBlob: "name-blob", SecAncOff: "anc-off", SecAncIDs: "anc-ids",
	SecAnteDesc: "ante-desc", SecAnteIDs: "ante-ids", SecAnteWords: "ante-words",
	SecConsDesc: "cons-desc", SecConsIDs: "cons-ids", SecConsWords: "cons-words",
	SecReachDesc: "reach-desc", SecReachIDs: "reach-ids", SecReachWords: "reach-words",
}

// Name returns the section kind's human-readable name ("kind-N" if unknown).
func (k SectionKind) Name() string {
	if n, ok := sectionNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", uint32(k))
}

// Header is the decoded fixed-size file header.
type Header struct {
	Version    uint32
	Generation uint64 // artifact-store generation (1 for standalone files)
	CreatedNs  int64  // unix nanoseconds the snapshot was built
	FileSize   uint64 // total file length the writer committed to
	Sections   int
}

// Created returns the snapshot build time.
func (h Header) Created() time.Time { return time.Unix(0, h.CreatedNs) }

// SectionInfo is one decoded section-table entry.
type SectionInfo struct {
	Kind   SectionKind
	Offset uint64
	Length uint64
	CRC    uint32
}

// Meta is the JSON document of the SecMeta section: human-oriented
// provenance plus the redundant counts Decode cross-checks against the
// section lengths.
type Meta struct {
	Tool       string  `json:"tool,omitempty"`   // writer ("negmine", "negmined", ...)
	Source     string  `json:"source,omitempty"` // where the rules came from
	MinSupport float64 `json:"minSupport,omitempty"`
	MinRI      float64 `json:"minRI,omitempty"`
	Rules      int     `json:"rules"`
	Items      int     `json:"items"`
}

// Posting kinds in a PostingDesc.
const (
	PostingEmpty  uint32 = 0 // no rules; Off/Len/N are zero
	PostingSparse uint32 = 1 // Len ascending rule ids in the index's IDs array
	PostingDense  uint32 = 2 // Len trimmed bitmap words in the index's Words array
)

// PostingDesc locates one item's posting list inside its index's shared
// backing arrays. The 16-byte little-endian struct is stored verbatim in
// the desc sections. Rows that share a backing subslice (taxonomy nodes
// reusing an ancestor's reach) simply repeat the same Off/Len.
type PostingDesc struct {
	Off  uint32 // element offset into IDs (sparse) or Words (dense)
	Len  uint32 // element count of the subslice
	N    uint32 // set bits (list length); == Len for sparse rows
	Kind uint32 // PostingEmpty, PostingSparse or PostingDense
}

// PostingIndex is one per-item posting-list index: m descriptors over two
// shared backing arrays.
type PostingIndex struct {
	Descs []PostingDesc
	IDs   []int32
	Words []uint64
}

// Image is the decoded (or to-be-encoded) snapshot payload. After Decode
// the slices alias the input buffer — callers must keep the buffer (or the
// mapping) alive for as long as the Image or anything derived from it is in
// use, and must not mutate either.
type Image struct {
	Header Header
	Meta   Meta

	// Rule arena, parallel slices indexed by rule id (serving rank).
	RI       []float64
	Expected []float64
	Actual   []float64
	Off      []uint32 // 2n+1: rule i's sides at SideIDs[Off[2i]:Off[2i+1]] / [Off[2i+1]:Off[2i+2]]
	SideIDs  []int32

	// Interned item dictionary: item i's name is
	// NameBlob[NameOffs[i]:NameOffs[i+1]].
	NameOffs []uint32
	NameBlob []byte

	// Flattened taxonomy-ancestor chains, nearest-first.
	AncOff []uint32
	AncIDs []int32

	Ante, Cons, Reach PostingIndex
}

// NumRules returns the rule count.
func (img *Image) NumRules() int { return len(img.RI) }

// NumItems returns the interned item count.
func (img *Image) NumItems() int { return len(img.NameOffs) - 1 }

// Name returns item i's name (copied out of the blob).
func (img *Image) Name(i int) string {
	return string(img.NameBlob[img.NameOffs[i]:img.NameOffs[i+1]])
}

// RuleSides returns rule i's antecedent and consequent item ids (shared
// subslices).
func (img *Image) RuleSides(i int) (ante, cons []int32) {
	a, b, c := img.Off[2*i], img.Off[2*i+1], img.Off[2*i+2]
	return img.SideIDs[a:b:b], img.SideIDs[b:c:c]
}

// RIRange returns the smallest and largest rule interest in the image
// (zeros when there are no rules). Rules are RI-descending, so this is the
// last and first entry.
func (img *Image) RIRange() (lo, hi float64) {
	if len(img.RI) == 0 {
		return 0, 0
	}
	return img.RI[len(img.RI)-1], img.RI[0]
}

// section pairs a kind with its payload bytes for encoding. The bytes are
// zero-copy views of the image slices on little-endian hosts.
type section struct {
	kind    SectionKind
	payload []byte
}

// sections lists the image's sections in file order. The meta JSON is the
// only allocation.
func (img *Image) sections() ([]section, error) {
	meta := img.Meta
	meta.Rules = img.NumRules()
	meta.Items = img.NumItems()
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("snapfmt: encoding meta: %w", err)
	}
	return []section{
		{SecMeta, mb},
		{SecRI, f64Bytes(img.RI)},
		{SecExpected, f64Bytes(img.Expected)},
		{SecActual, f64Bytes(img.Actual)},
		{SecOff, u32Bytes(img.Off)},
		{SecSideIDs, i32Bytes(img.SideIDs)},
		{SecNameOffs, u32Bytes(img.NameOffs)},
		{SecNameBlob, img.NameBlob},
		{SecAncOff, u32Bytes(img.AncOff)},
		{SecAncIDs, i32Bytes(img.AncIDs)},
		{SecAnteDesc, descBytes(img.Ante.Descs)},
		{SecAnteIDs, i32Bytes(img.Ante.IDs)},
		{SecAnteWords, u64Bytes(img.Ante.Words)},
		{SecConsDesc, descBytes(img.Cons.Descs)},
		{SecConsIDs, i32Bytes(img.Cons.IDs)},
		{SecConsWords, u64Bytes(img.Cons.Words)},
		{SecReachDesc, descBytes(img.Reach.Descs)},
		{SecReachIDs, i32Bytes(img.Reach.IDs)},
		{SecReachWords, u64Bytes(img.Reach.Words)},
	}, nil
}

// pad8 rounds n up to the next multiple of 8.
func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// EncodedSize returns the exact file size Encode will produce for img.
func EncodedSize(img *Image) (int64, error) {
	secs, err := img.sections()
	if err != nil {
		return 0, err
	}
	size := uint64(headerSize) + uint64(len(secs))*sectionSize
	for _, s := range secs {
		size = pad8(size) + uint64(len(s.payload))
	}
	return int64(size), nil
}

// Encode writes img to w in the .nsnap format. The writer sees the bytes in
// file order (header, table, payloads), so Encode composes directly with
// atomicio.WriteFile for crash-safe emission.
func Encode(w io.Writer, img *Image) error {
	secs, err := img.sections()
	if err != nil {
		return err
	}

	// Layout + checksum pass: place every section, CRC its payload.
	table := make([]SectionInfo, len(secs))
	off := uint64(headerSize) + uint64(len(secs))*sectionSize
	for i, s := range secs {
		off = pad8(off)
		table[i] = SectionInfo{
			Kind:   s.kind,
			Offset: off,
			Length: uint64(len(s.payload)),
			CRC:    crc32.Checksum(s.payload, castagnoli),
		}
		off += uint64(len(s.payload))
	}
	fileSize := off

	// Header + section table.
	tb := make([]byte, len(secs)*sectionSize)
	for i, e := range table {
		b := tb[i*sectionSize:]
		binary.LittleEndian.PutUint32(b[0:], uint32(e.Kind))
		binary.LittleEndian.PutUint64(b[8:], e.Offset)
		binary.LittleEndian.PutUint64(b[16:], e.Length)
		binary.LittleEndian.PutUint32(b[24:], e.CRC)
	}
	hb := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hb[0:], Magic)
	binary.LittleEndian.PutUint32(hb[4:], Version)
	binary.LittleEndian.PutUint64(hb[8:], img.Header.Generation)
	binary.LittleEndian.PutUint64(hb[16:], uint64(img.Header.CreatedNs))
	binary.LittleEndian.PutUint64(hb[24:], fileSize)
	binary.LittleEndian.PutUint32(hb[32:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(hb[56:], crc32.Checksum(tb, castagnoli))
	binary.LittleEndian.PutUint32(hb[60:], crc32.Checksum(hb[:60], castagnoli))

	if err := fault.Hit(PointEncode); err != nil {
		return err
	}
	if _, err := w.Write(hb); err != nil {
		return err
	}
	if _, err := w.Write(tb); err != nil {
		return err
	}

	// Payload pass.
	var zeros [8]byte
	pos := uint64(headerSize) + uint64(len(secs))*sectionSize
	for i, s := range secs {
		if err := fault.Hit(PointEncode); err != nil {
			return err
		}
		if padded := pad8(pos); padded != pos {
			if _, err := w.Write(zeros[:padded-pos]); err != nil {
				return err
			}
			pos = padded
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		pos += table[i].Length
	}
	return nil
}

// WriteFile atomically writes img to path (temp + fsync + rename): a crash
// mid-write never leaves a torn snapshot where a loader could find it.
func WriteFile(path string, img *Image) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Encode(w, img)
	})
}

// Checksum returns the CRC-32C of the whole encoded file — the artifact
// store's content checksum. It is computed over b as given.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// validRI reports whether the RI slice is NaN-free and non-increasing — the
// serving invariant (rule id order is rank order) that the binary-searched
// RI prefix depends on.
func validRI(ri []float64) bool {
	for i, v := range ri {
		if math.IsNaN(v) {
			return false
		}
		if i > 0 && v > ri[i-1] {
			return false
		}
	}
	return true
}
