//go:build unix

package snapfmt

import (
	"fmt"
	"os"
	"syscall"

	"negmine/internal/fault"
)

// mapFile maps path read-only and shared, so every process serving the same
// snapshot generation shares one copy of its pages in the page cache.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, formatErrf("%s: empty file", path)
	}
	if int64(int(size)) != size {
		return nil, false, fmt.Errorf("snapfmt: %s: %d bytes does not fit this platform's address space", path, size)
	}
	if err := fault.Hit(PointMmap); err != nil {
		return nil, false, err
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("snapfmt: mmap %s: %w", path, err)
	}
	return b, true, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
