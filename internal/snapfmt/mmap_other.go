//go:build !unix

package snapfmt

import (
	"os"

	"negmine/internal/fault"
)

// mapFile reads the whole file on platforms without mmap support. The
// decoded image still aliases the buffer, so serving works identically —
// only the page-cache sharing and lazy paging are lost.
func mapFile(path string) (data []byte, mapped bool, err error) {
	if err := fault.Hit(PointMmap); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(b) == 0 {
		return nil, false, formatErrf("%s: empty file", path)
	}
	return b, false, nil
}

func unmap(data []byte) error { return nil }
