package datagen

import (
	"fmt"

	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// DriftParams parameterizes GenerateDrift's traffic model on top of the
// base Params (which still control the taxonomy shape, transaction count,
// basket length, and seed).
type DriftParams struct {
	Exponent       float64 // zipf skew over leaf items (0 = uniform)
	Phases         int     // popularity phases (≤ 1 = stationary)
	EventsPerPhase int     // transactions per phase (0 = NumTransactions/Phases)
	Shift          int     // rank rotation per phase (0 = NumItems/Phases)
}

// GenerateDrift builds the taxonomy exactly as Generate does, then emits
// transactions from a drifting zipfian BasketStream instead of the paper's
// stationary cluster model: basket items are leaves drawn by popularity
// rank, and the rank→leaf assignment rotates every EventsPerPhase
// transactions. Use it to exercise the incremental miner and serving stack
// under the non-stationary regime the stationary generator cannot produce.
func GenerateDrift(p Params, d DriftParams) (*taxonomy.Taxonomy, *txdb.MemDB, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	src := stats.NewSource(p.Seed)
	tax, err := taxonomy.Generate(taxonomy.GenSpec{
		Leaves: p.NumItems,
		Roots:  p.Roots,
		Fanout: p.Fanout,
	}, src)
	if err != nil {
		return nil, nil, err
	}
	leaves := tax.Leaves()
	every := d.EventsPerPhase
	if every == 0 && d.Phases > 1 {
		every = p.NumTransactions / d.Phases
		if every < 1 {
			every = 1
		}
	}
	stream, err := NewBasketStream(StreamConfig{
		N:              leaves.Len(),
		Exponent:       d.Exponent,
		AvgLen:         p.AvgTxLen,
		Phases:         d.Phases,
		EventsPerPhase: every,
		Shift:          d.Shift,
		Seed:           p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	if leaves.Len() == 0 {
		return nil, nil, fmt.Errorf("datagen: taxonomy has no leaves")
	}
	db := &txdb.MemDB{}
	var idx []int
	items := make([]item.Item, 0, int(p.AvgTxLen)+8)
	for i := 0; i < p.NumTransactions; i++ {
		idx = stream.Next(idx[:0])
		items = items[:0]
		for _, r := range idx {
			items = append(items, leaves[r])
		}
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: item.New(items...)})
	}
	return tax, db, nil
}
