package datagen

// Drifting zipfian traffic primitives, shared by `datagen -drift` and the
// production workload simulator (internal/loadsim).
//
// The paper's generator (datagen.Generate) models a stationary population:
// cluster and itemset weights are frozen at build time, so every replayed
// bench sees the same item popularity forever. Real retail traffic is
// neither uniform nor stationary — a few items absorb most demand (zipfian
// popularity) and *which* items are popular rotates with seasons and
// campaigns. The types here model exactly that, deterministically: all
// randomness flows from one seed, so a (config, seed) pair identifies a
// traffic stream bit-for-bit.

import (
	"fmt"
	"math"

	"negmine/internal/stats"
)

// Zipf is a seeded zipfian sampler over ranks [0, n): rank r is drawn with
// probability proportional to 1/(r+1)^s. Sampling is a binary search over
// the precomputed CDF, O(log n) per draw and allocation-free.
type Zipf struct {
	cdf []float64 // cdf[r] = P(rank ≤ r); cdf[n-1] == 1
	s   float64
}

// NewZipf builds a sampler over n ranks with skew exponent s ≥ 0 (s = 0 is
// uniform; retail basket popularity is typically 0.8–1.2).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("datagen: zipf over %d ranks, want ≥ 1", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("datagen: zipf exponent %v, want finite ≥ 0", s)
	}
	z := &Zipf{cdf: make([]float64, n), s: s}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability of rank r.
func (z *Zipf) Prob(r int) float64 {
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// Sample draws one rank from src.
func (z *Zipf) Sample(src *stats.Source) int {
	u := src.Float64()
	// Binary search for the first rank with cdf ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DriftSchedule maps popularity ranks to items with a rotating assignment:
// within phase p, rank r is held by item (r + p·Shift) mod N. Advancing the
// phase shifts the whole popularity curve across the dictionary — the
// "seasonal/category drift" regime where yesterday's head items become
// today's tail. The schedule itself is pure arithmetic (no state), so any
// consumer that agrees on the phase number sees the same assignment.
type DriftSchedule struct {
	N      int // item universe size
	Phases int // distinct phases before the rotation repeats (≤ 1 = stationary)
	Shift  int // item-index rotation per phase (0 = N/Phases)
}

// shift resolves the per-phase rotation step.
func (d DriftSchedule) shift() int {
	if d.Shift > 0 {
		return d.Shift
	}
	if d.Phases > 1 {
		if s := d.N / d.Phases; s > 0 {
			return s
		}
	}
	return 1
}

// Item returns the item index holding rank r during phase p.
func (d DriftSchedule) Item(phase, rank int) int {
	if d.N <= 0 {
		return 0
	}
	if d.Phases <= 1 {
		return rank % d.N
	}
	p := phase % d.Phases
	if p < 0 {
		p += d.Phases
	}
	return (rank + p*d.shift()) % d.N
}

// StreamConfig parameterizes a BasketStream.
type StreamConfig struct {
	N        int     // item universe size (indices [0, N))
	Exponent float64 // zipf skew (0 = uniform)
	AvgLen   float64 // mean basket length (Poisson, at least 1)

	// Drift: the stream advances one phase every EventsPerPhase baskets,
	// cycling through Phases rank rotations. Phases ≤ 1 disables drift.
	Phases         int
	EventsPerPhase int
	Shift          int // rank rotation per phase (0 = N/Phases)

	Seed int64
}

func (c StreamConfig) validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("datagen: stream over %d items, want ≥ 1", c.N)
	case c.AvgLen < 1:
		return fmt.Errorf("datagen: stream AvgLen = %v, want ≥ 1", c.AvgLen)
	case c.Phases > 1 && c.EventsPerPhase < 1:
		return fmt.Errorf("datagen: stream with %d phases needs EventsPerPhase ≥ 1", c.Phases)
	}
	return nil
}

// BasketStream emits an endless deterministic sequence of baskets: item
// indices drawn from a zipfian popularity curve whose rank→item assignment
// rotates on the drift schedule. Two streams built from equal configs emit
// identical sequences. Not safe for concurrent use.
type BasketStream struct {
	cfg   StreamConfig
	zipf  *Zipf
	sched DriftSchedule
	src   *stats.Source
	event int64 // baskets emitted so far
}

// NewBasketStream builds a stream from cfg.
func NewBasketStream(cfg StreamConfig) (*BasketStream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	z, err := NewZipf(cfg.N, cfg.Exponent)
	if err != nil {
		return nil, err
	}
	return &BasketStream{
		cfg:   cfg,
		zipf:  z,
		sched: DriftSchedule{N: cfg.N, Phases: cfg.Phases, Shift: cfg.Shift},
		src:   stats.NewSource(cfg.Seed),
	}, nil
}

// Phase returns the drift phase the next basket will be drawn in.
func (s *BasketStream) Phase() int {
	if s.cfg.Phases <= 1 {
		return 0
	}
	return int(s.event/int64(s.cfg.EventsPerPhase)) % s.cfg.Phases
}

// Events returns how many baskets the stream has emitted.
func (s *BasketStream) Events() int64 { return s.event }

// Next appends one basket of distinct item indices to dst and returns the
// extended slice. Basket length is Poisson(AvgLen) clamped to [1, N];
// duplicate draws within a basket are rejected and redrawn (bounded, so a
// tiny universe cannot stall the stream).
func (s *BasketStream) Next(dst []int) []int {
	phase := s.Phase()
	s.event++
	target := s.src.PoissonAtLeast(s.cfg.AvgLen, 1)
	if target > s.cfg.N {
		target = s.cfg.N
	}
	start := len(dst)
	for len(dst)-start < target {
		it := s.sched.Item(phase, s.zipf.Sample(s.src))
		dup := false
		for _, have := range dst[start:] {
			if have == it {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, it)
			continue
		}
		// Reject the duplicate; if the head of the curve is exhausted fall
		// back to a uniform draw so the loop terminates quickly.
		if it = s.sched.Item(phase, s.src.Intn(s.cfg.N)); !contains(dst[start:], it) {
			dst = append(dst, it)
		}
	}
	return dst
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ChiSquare computes Pearson's chi-square statistic of observed counts
// against expected probabilities (both length n, counts summing to total).
// Callers compare the result against a critical value for n-1 degrees of
// freedom; the zipf distribution tests use it to verify configured skew.
func ChiSquare(observed []int, probs []float64) float64 {
	total := 0
	for _, o := range observed {
		total += o
	}
	x2 := 0.0
	for i, o := range observed {
		e := probs[i] * float64(total)
		if e == 0 {
			continue
		}
		d := float64(o) - e
		x2 += d * d / e
	}
	return x2
}
