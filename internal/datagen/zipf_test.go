package datagen

import (
	"bytes"
	"fmt"
	"testing"

	"negmine/internal/stats"
	"negmine/internal/txdb"
)

// TestZipfChiSquare draws a large sample and verifies the empirical rank
// distribution matches the configured skew by Pearson's chi-square. The
// critical value for 99 degrees of freedom at α = 0.001 is 148.2; the
// draws are seeded, so this is a deterministic regression test, not a
// flaky statistical one.
func TestZipfChiSquare(t *testing.T) {
	for _, s := range []float64{0, 0.8, 1.0, 1.2} {
		t.Run(fmt.Sprintf("s=%v", s), func(t *testing.T) {
			const n, draws = 100, 200000
			z, err := NewZipf(n, s)
			if err != nil {
				t.Fatal(err)
			}
			src := stats.NewSource(42)
			obs := make([]int, n)
			for i := 0; i < draws; i++ {
				obs[z.Sample(src)]++
			}
			probs := make([]float64, n)
			sum := 0.0
			for r := range probs {
				probs[r] = z.Prob(r)
				sum += probs[r]
			}
			if sum < 0.999999 || sum > 1.000001 {
				t.Fatalf("Prob sums to %v, want 1", sum)
			}
			x2 := ChiSquare(obs, probs)
			if x2 > 148.2 {
				t.Fatalf("chi-square = %.1f exceeds critical value 148.2 for 99 dof at α=0.001", x2)
			}
			// The skew must actually bite: rank 0 should dominate for s > 0.
			if s > 0 && obs[0] <= obs[n-1] {
				t.Fatalf("rank 0 drawn %d times, rank %d drawn %d — no skew", obs[0], n-1, obs[n-1])
			}
		})
	}
}

// TestZipfRejectsBadConfig covers the validation paths.
func TestZipfRejectsBadConfig(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) succeeded")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10, -1) succeeded")
	}
	if _, err := NewBasketStream(StreamConfig{N: 0, AvgLen: 2}); err == nil {
		t.Error("stream over 0 items succeeded")
	}
	if _, err := NewBasketStream(StreamConfig{N: 10, AvgLen: 0.5}); err == nil {
		t.Error("stream with AvgLen < 1 succeeded")
	}
	if _, err := NewBasketStream(StreamConfig{N: 10, AvgLen: 2, Phases: 3}); err == nil {
		t.Error("drifting stream without EventsPerPhase succeeded")
	}
}

// TestDriftScheduleRotation verifies the rank→item assignment is a
// bijection within each phase and actually moves across phases.
func TestDriftScheduleRotation(t *testing.T) {
	d := DriftSchedule{N: 12, Phases: 4}
	for p := 0; p < d.Phases; p++ {
		seen := map[int]bool{}
		for r := 0; r < d.N; r++ {
			it := d.Item(p, r)
			if it < 0 || it >= d.N {
				t.Fatalf("phase %d rank %d → item %d out of range", p, r, it)
			}
			if seen[it] {
				t.Fatalf("phase %d maps two ranks to item %d", p, it)
			}
			seen[it] = true
		}
	}
	if d.Item(0, 0) == d.Item(1, 0) {
		t.Fatal("head item did not move between phases")
	}
	if d.Item(0, 0) != d.Item(d.Phases, 0) {
		t.Fatal("phase rotation is not cyclic")
	}
	// Stationary schedule never moves.
	s := DriftSchedule{N: 12, Phases: 1}
	if s.Item(0, 3) != 3 || s.Item(7, 3) != 3 {
		t.Fatal("stationary schedule moved")
	}
}

// encodeStream renders count baskets from a fresh stream into a byte
// buffer — the determinism contract is byte-identical output.
func encodeStream(t *testing.T, cfg StreamConfig, count int) []byte {
	t.Helper()
	s, err := NewBasketStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var basket []int
	for i := 0; i < count; i++ {
		basket = s.Next(basket[:0])
		fmt.Fprintf(&buf, "%v\n", basket)
	}
	return buf.Bytes()
}

// TestBasketStreamDeterminism: same seed ⇒ byte-identical stream; a
// different seed ⇒ a different stream.
func TestBasketStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{
		N: 500, Exponent: 1.0, AvgLen: 6,
		Phases: 3, EventsPerPhase: 100, Seed: 7,
	}
	a := encodeStream(t, cfg, 1000)
	b := encodeStream(t, cfg, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
	cfg.Seed = 8
	if bytes.Equal(a, encodeStream(t, cfg, 1000)) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestBasketStreamBaskets checks basic basket invariants: non-empty,
// distinct items, indices in range, and that drift shifts the head item.
func TestBasketStreamBaskets(t *testing.T) {
	cfg := StreamConfig{
		N: 50, Exponent: 1.2, AvgLen: 4,
		Phases: 2, EventsPerPhase: 2000, Seed: 3,
	}
	s, err := NewBasketStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	headByPhase := make([]map[int]int, cfg.Phases)
	for p := range headByPhase {
		headByPhase[p] = map[int]int{}
	}
	var basket []int
	for i := 0; i < 2*cfg.EventsPerPhase; i++ {
		phase := s.Phase()
		basket = s.Next(basket[:0])
		if len(basket) == 0 {
			t.Fatal("empty basket")
		}
		seen := map[int]bool{}
		for _, it := range basket {
			if it < 0 || it >= cfg.N {
				t.Fatalf("item %d out of range", it)
			}
			if seen[it] {
				t.Fatalf("basket %v repeats item %d", basket, it)
			}
			seen[it] = true
			headByPhase[phase][it]++
		}
	}
	mode := func(m map[int]int) int {
		best, bestN := -1, -1
		for it, n := range m {
			if n > bestN {
				best, bestN = it, n
			}
		}
		return best
	}
	if mode(headByPhase[0]) == mode(headByPhase[1]) {
		t.Fatalf("hottest item identical across phases (%d) — drift had no effect", mode(headByPhase[0]))
	}
}

// TestGenerateDriftDeterminism: GenerateDrift with the same (Params,
// DriftParams) must produce byte-identical databases, and the emitted
// popularity must be visibly zipfian.
func TestGenerateDriftDeterminism(t *testing.T) {
	p := Scaled(Short(), 100)
	p.NumTransactions = 2000
	d := DriftParams{Exponent: 1.0, Phases: 4}

	render := func(d DriftParams) ([]byte, map[int64]int) {
		tax, db, err := GenerateDrift(p, d)
		if err != nil {
			t.Fatal(err)
		}
		if tax.Leaves().Len() == 0 {
			t.Fatal("no leaves")
		}
		var buf bytes.Buffer
		freq := map[int64]int{}
		err = db.Scan(func(tx txdb.Transaction) error {
			fmt.Fprintf(&buf, "%d %v\n", tx.TID, tx.Items)
			for _, it := range tx.Items {
				freq[int64(it)]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), freq
	}
	a, _ := render(d)
	b, _ := render(d)
	if !bytes.Equal(a, b) {
		t.Fatal("same params produced different databases")
	}
	// Skew is asserted on a stationary stream: with drift enabled every
	// item holds the head rank for only 1/Phases of the run, which
	// deliberately flattens per-item totals.
	_, freq := render(DriftParams{Exponent: 1.2})
	max, n := 0, 0
	for _, c := range freq {
		if c > max {
			max = c
		}
		n++
	}
	if n < 2 {
		t.Fatal("degenerate item distribution")
	}
	avg := 0
	for _, c := range freq {
		avg += c
	}
	avg /= n
	if max < 3*avg {
		t.Fatalf("hottest item seen %d times vs mean %d — distribution not skewed", max, avg)
	}
}
