package datagen

import (
	"math"
	"testing"

	"negmine/internal/apriori"
	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/txdb"
)

// tiny returns laptop-instant parameters with the paper's proportions.
func tiny(seed int64) Params {
	p := Scaled(Short(), 100)
	p.Seed = seed
	return p
}

func TestGenerateBasics(t *testing.T) {
	p := tiny(1)
	tax, db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != p.NumTransactions {
		t.Errorf("transactions = %d, want %d", db.Count(), p.NumTransactions)
	}
	if got := tax.Leaves().Len(); got != p.NumItems {
		t.Errorf("leaves = %d, want %d", got, p.NumItems)
	}
	// Every transaction item must be a taxonomy leaf.
	leaves := tax.Leaves()
	err = db.Scan(func(tx txdb.Transaction) error {
		for _, x := range tx.Items {
			if !leaves.Contains(x) {
				t.Fatalf("transaction %d contains non-leaf %v (%s)", tx.TID, x, tax.Name(x))
			}
		}
		if err := tx.Items.Validate(); err != nil {
			t.Fatalf("transaction %d: %v", tx.TID, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAverageTransactionLength(t *testing.T) {
	p := tiny(2)
	p.NumTransactions = 2000
	_, db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := txdb.Collect(db)
	if err != nil {
		t.Fatal(err)
	}
	// Corruption + dedup shave a little off; allow a generous band around
	// the Poisson target.
	if st.AvgLen < p.AvgTxLen*0.7 || st.AvgLen > p.AvgTxLen*1.6 {
		t.Errorf("average length = %v, target %v", st.AvgLen, p.AvgTxLen)
	}
}

func TestDeterminism(t *testing.T) {
	a1, d1, err := Generate(tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	a2, d2, err := Generate(tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Size() != a2.Size() {
		t.Fatal("taxonomies differ in size")
	}
	if d1.Count() != d2.Count() {
		t.Fatal("databases differ in size")
	}
	for i := range d1.Transactions() {
		if !d1.Transactions()[i].Items.Equal(d2.Transactions()[i].Items) {
			t.Fatalf("transaction %d differs", i)
		}
	}
	_, d3, err := Generate(tiny(8))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range d1.Transactions() {
		if d1.Transactions()[i].Items.Equal(d3.Transactions()[i].Items) {
			same++
		}
	}
	if same == d1.Count() {
		t.Error("different seeds produced identical data")
	}
}

func TestClusterStructureCreatesSkew(t *testing.T) {
	// The nested-logit model must produce strongly non-uniform pair
	// supports: the most frequent pair should dwarf the uniform baseline
	// (that skew is what makes association mining meaningful).
	p := tiny(3)
	p.NumTransactions = 1500
	_, db, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apriori.Mine(db, apriori.Options{MinSupport: 0.01, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 2 || len(res.Levels[1]) == 0 {
		t.Fatal("no frequent pairs at 1% support — generator produced noise")
	}
	best := 0
	for _, cs := range res.Levels[1] {
		if cs.Count > best {
			best = cs.Count
		}
	}
	st, _ := txdb.Collect(db)
	// Uniform baseline: with N items and avg length L, a specific pair's
	// expected support ≈ D·(L/N)². The generated skew must beat it by ≥10×.
	uniform := float64(db.Count()) * math.Pow(st.AvgLen/float64(p.NumItems), 2)
	if float64(best) < 10*uniform {
		t.Errorf("best pair count %d not skewed vs uniform baseline %.2f", best, uniform)
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(Short(), 10)
	if p.NumTransactions != 5000 || p.NumItems != 800 || p.NumClusters != 200 {
		t.Errorf("Scaled = %+v", p)
	}
	if got := Scaled(Short(), 1); got != Short() {
		t.Error("factor 1 should be identity")
	}
	// Extreme factors clamp to usable minimums.
	p = Scaled(Short(), 1000)
	if p.NumItems < 50 || p.NumClusters < 10 || p.Roots > p.NumItems/10 {
		t.Errorf("extreme Scaled = %+v", p)
	}
}

func TestPresetShapes(t *testing.T) {
	s, tl := Short(), Tall()
	if s.Fanout != 9 || tl.Fanout != 3 {
		t.Error("preset fanouts wrong")
	}
	if s.NumItems != tl.NumItems || s.NumTransactions != tl.NumTransactions {
		t.Error("Short and Tall must differ only in taxonomy shape")
	}
	// Tall taxonomy must be deeper than Short for the same leaves.
	ps, pt := Scaled(s, 10), Scaled(tl, 10)
	ps.NumTransactions, pt.NumTransactions = 200, 200 // taxonomy shape is what matters here
	ps.Seed, pt.Seed = 5, 5
	ts, _, err := Generate(ps)
	if err != nil {
		t.Fatal(err)
	}
	tt, _, err := Generate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Height() <= ts.Height() {
		t.Errorf("tall height %d ≤ short height %d", tt.Height(), ts.Height())
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NumTransactions = -1 },
		func(p *Params) { p.AvgTxLen = 0 },
		func(p *Params) { p.AvgClusterSize = 0 },
		func(p *Params) { p.AvgItemsetSize = 0.5 },
		func(p *Params) { p.AvgItemsetsPerCluster = 0 },
		func(p *Params) { p.NumClusters = 0 },
		func(p *Params) { p.NumItems = 1 },
		func(p *Params) { p.Roots = 0 },
		func(p *Params) { p.Fanout = 1 },
		func(p *Params) { p.CorruptionMean = 1 },
		func(p *Params) { p.CorruptionMean = -0.2 },
		func(p *Params) { p.CorruptionStdDev = -1 },
	}
	for i, mutate := range bad {
		p := tiny(1)
		mutate(&p)
		if _, _, err := Generate(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	pool := []item.Item{1, 2, 3, 4, 5}
	src := newTestSource()
	got := sampleWithoutReplacement(pool, 3, src)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[item.Item]bool{}
	for _, x := range got {
		if seen[x] {
			t.Fatalf("duplicate %v", x)
		}
		seen[x] = true
	}
	// Oversized request clamps.
	if got := sampleWithoutReplacement(pool, 10, src); len(got) != 5 {
		t.Errorf("clamped len = %d", len(got))
	}
	// The pool itself must not be reordered.
	for i, x := range pool {
		if x != item.Item(i+1) {
			t.Error("pool mutated")
		}
	}
}

func newTestSource() *stats.Source { return stats.NewSource(11) }
