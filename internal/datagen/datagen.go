// Package datagen implements the paper's synthetic retail data generator
// (§3.1): the Quest-style generator of Agrawal–Srikant extended with an
// item taxonomy and a nested-logit model of consumer choice — a shopper
// first picks a cluster of categories (weighted), then one of the cluster's
// potentially-large itemsets (weighted), and buys a corrupted subset of its
// leaf items.
//
// All randomness flows from a single seed, so a Params value identifies a
// dataset bit-for-bit.
package datagen

import (
	"fmt"
	"math"

	"negmine/internal/item"
	"negmine/internal/stats"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Params mirrors the paper's Table 3.
type Params struct {
	NumTransactions       int     // |D|: number of transactions
	AvgTxLen              float64 // |T|: average transaction size
	AvgClusterSize        float64 // |C|: average size of potentially large clusters
	AvgItemsetSize        float64 // |I|: average size of potentially large itemsets
	AvgItemsetsPerCluster float64 // |S|: average number of itemsets per cluster
	NumClusters           int     // |L|: number of potentially large clusters
	NumItems              int     // N: number of (leaf) items
	Roots                 int     // R: number of taxonomy roots
	Fanout                float64 // F: average taxonomy fanout

	// CorruptionMean/StdDev parameterize the per-itemset corruption level
	// (paper: normal with mean 0.5 and variance 0.1, i.e. stddev √0.1).
	CorruptionMean   float64
	CorruptionStdDev float64

	Seed int64
}

// Short returns the paper's "Short" dataset parameters (wide, shallow
// taxonomy: fanout 9). |T| and R are not legible in the paper's Table 4; we
// use |T| = 10 (the Quest default) and R = 100, which reproduces the
// paper's shape: ~2 category levels over 8,000 leaves.
func Short() Params {
	return Params{
		NumTransactions:       50000,
		AvgTxLen:              10,
		AvgClusterSize:        5,
		AvgItemsetSize:        5,
		AvgItemsetsPerCluster: 3,
		NumClusters:           2000,
		NumItems:              8000,
		Roots:                 100,
		Fanout:                9,
		CorruptionMean:        0.5,
		CorruptionStdDev:      math.Sqrt(0.1),
		Seed:                  1,
	}
}

// Tall returns the paper's "Tall" dataset parameters (narrow, deep
// taxonomy: fanout 3, ~6 category levels). See Short for the |T|/R note.
func Tall() Params {
	p := Short()
	p.Fanout = 3
	p.Roots = 25
	return p
}

// Scaled shrinks a parameter set by factor (≥ 1) for laptop-scale tests and
// benchmarks, keeping the proportions of the original.
func Scaled(p Params, factor int) Params {
	if factor <= 1 {
		return p
	}
	p.NumTransactions /= factor
	p.NumItems /= factor
	p.NumClusters /= factor
	if p.NumItems < 50 {
		p.NumItems = 50
	}
	if p.NumClusters < 10 {
		p.NumClusters = 10
	}
	if p.Roots > p.NumItems/10 {
		p.Roots = p.NumItems / 10
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.NumTransactions < 0:
		return fmt.Errorf("datagen: NumTransactions = %d", p.NumTransactions)
	case p.AvgTxLen <= 0:
		return fmt.Errorf("datagen: AvgTxLen = %v, want > 0", p.AvgTxLen)
	case p.AvgClusterSize < 1:
		return fmt.Errorf("datagen: AvgClusterSize = %v, want ≥ 1", p.AvgClusterSize)
	case p.AvgItemsetSize < 1:
		return fmt.Errorf("datagen: AvgItemsetSize = %v, want ≥ 1", p.AvgItemsetSize)
	case p.AvgItemsetsPerCluster < 1:
		return fmt.Errorf("datagen: AvgItemsetsPerCluster = %v, want ≥ 1", p.AvgItemsetsPerCluster)
	case p.NumClusters < 1:
		return fmt.Errorf("datagen: NumClusters = %d, want ≥ 1", p.NumClusters)
	case p.NumItems < 2:
		return fmt.Errorf("datagen: NumItems = %d, want ≥ 2", p.NumItems)
	case p.Roots < 1:
		return fmt.Errorf("datagen: Roots = %d, want ≥ 1", p.Roots)
	case p.Fanout < 2:
		return fmt.Errorf("datagen: Fanout = %v, want ≥ 2", p.Fanout)
	case p.CorruptionMean < 0 || p.CorruptionMean >= 1:
		return fmt.Errorf("datagen: CorruptionMean = %v, want [0, 1)", p.CorruptionMean)
	case p.CorruptionStdDev < 0:
		return fmt.Errorf("datagen: CorruptionStdDev = %v, want ≥ 0", p.CorruptionStdDev)
	}
	return nil
}

// model is the generator's frozen random structure: the clusters and their
// potentially large itemsets.
type model struct {
	clusterChoice *stats.WeightedChoice
	clusters      []cluster
}

type cluster struct {
	itemsets []item.Itemset
	choice   *stats.WeightedChoice
}

// Generate builds the taxonomy and the transaction database.
func Generate(p Params) (*taxonomy.Taxonomy, *txdb.MemDB, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	src := stats.NewSource(p.Seed)
	tax, err := taxonomy.Generate(taxonomy.GenSpec{
		Leaves: p.NumItems,
		Roots:  p.Roots,
		Fanout: p.Fanout,
	}, src)
	if err != nil {
		return nil, nil, err
	}
	m, err := buildModel(p, tax, src)
	if err != nil {
		return nil, nil, err
	}
	db := &txdb.MemDB{}
	for i := 0; i < p.NumTransactions; i++ {
		db.Append(txdb.Transaction{TID: int64(i + 1), Items: m.transaction(p, src)})
	}
	return tax, db, nil
}

// buildModel creates the potentially-large clusters and itemsets (paper
// §3.1, second and third paragraphs).
func buildModel(p Params, tax *taxonomy.Taxonomy, src *stats.Source) (*model, error) {
	// Clusters draw from the categories one level above the leaves.
	leafParents := leafParentCategories(tax)
	if len(leafParents) == 0 {
		return nil, fmt.Errorf("datagen: taxonomy has no categories")
	}
	m := &model{clusters: make([]cluster, p.NumClusters)}
	clusterWeights := make([]float64, p.NumClusters)
	for ci := range m.clusters {
		clusterWeights[ci] = src.Exp(1)
		size := src.PoissonAtLeast(p.AvgClusterSize, 1)
		if size > len(leafParents) {
			size = len(leafParents)
		}
		cats := sampleWithoutReplacement(leafParents, size, src)
		// Pool of leaf items under the cluster's categories.
		var pool []item.Item
		for _, c := range cats {
			pool = append(pool, tax.Children(c)...)
		}
		nSets := src.PoissonAtLeast(p.AvgItemsetsPerCluster, 1)
		cl := cluster{itemsets: make([]item.Itemset, 0, nSets)}
		weights := make([]float64, 0, nSets)
		for s := 0; s < nSets; s++ {
			size := src.PoissonAtLeast(p.AvgItemsetSize, 1)
			if size > len(pool) {
				size = len(pool)
			}
			cl.itemsets = append(cl.itemsets, item.New(sampleWithoutReplacement(pool, size, src)...))
			weights = append(weights, src.Exp(1))
		}
		stats.Normalize(weights)
		cl.choice = stats.NewWeightedChoice(weights)
		m.clusters[ci] = cl
	}
	stats.Normalize(clusterWeights)
	m.clusterChoice = stats.NewWeightedChoice(clusterWeights)
	return m, nil
}

// transaction emits one basket: pick clusters (the shopper's category
// decision) and itemsets (the brand decision) until the Poisson target
// length is reached, corrupting each picked itemset.
func (m *model) transaction(p Params, src *stats.Source) item.Itemset {
	target := src.PoissonAtLeast(p.AvgTxLen, 1)
	var items []item.Item
	for len(items) < target {
		cl := &m.clusters[m.clusterChoice.Sample(src)]
		set := cl.itemsets[cl.choice.Sample(src)]
		// Corruption: drop trailing items while uniform < c (paper §3.1).
		c := src.Normal(p.CorruptionMean, p.CorruptionStdDev)
		keep := set.Len()
		for keep > 0 && src.Float64() < c {
			keep--
		}
		items = append(items, set[:keep]...)
	}
	return item.New(items...)
}

// leafParentCategories returns the distinct parents of leaf items.
func leafParentCategories(tax *taxonomy.Taxonomy) []item.Item {
	seen := map[item.Item]struct{}{}
	var out []item.Item
	for _, l := range tax.Leaves() {
		p := tax.Parent(l)
		if p == item.None {
			continue
		}
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}

// sampleWithoutReplacement draws n distinct elements from pool (partial
// Fisher–Yates on a copy).
func sampleWithoutReplacement(pool []item.Item, n int, src *stats.Source) []item.Item {
	cp := make([]item.Item, len(pool))
	copy(cp, pool)
	if n > len(cp) {
		n = len(cp)
	}
	for i := 0; i < n; i++ {
		j := i + src.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:n]
}
