package bitmat

import (
	"math/rand"
	"sort"
	"testing"

	"negmine/internal/item"
)

func TestSetMarksPositions(t *testing.T) {
	m := New(item.New(1, 2, 3), 130)
	if !m.Set(1, 0) || !m.Set(1, 63) || !m.Set(1, 64) || !m.Set(2, 129) {
		t.Fatal("Set on items with rows returned false")
	}
	if m.Set(9, 5) {
		t.Fatal("Set on an item without a row returned true")
	}
	if got := PopCount(m.Row(1)); got != 3 {
		t.Fatalf("row 1 popcount = %d, want 3", got)
	}
	if got := PopCount(m.Row(3)); got != 0 {
		t.Fatalf("untouched row popcount = %d, want 0", got)
	}
	var set []int
	for i := NextSet(m.Row(1), 0); i >= 0; i = NextSet(m.Row(1), i+1) {
		set = append(set, i)
	}
	if want := []int{0, 63, 64}; !equalInts(set, want) {
		t.Fatalf("row 1 positions = %v, want %v", set, want)
	}
}

func TestNextSetEdgeCases(t *testing.T) {
	if got := NextSet(nil, 0); got != -1 {
		t.Fatalf("NextSet(nil) = %d", got)
	}
	row := []uint64{0, 1 << 5}
	if got := NextSet(row, -7); got != 69 {
		t.Fatalf("NextSet(negative from) = %d, want 69", got)
	}
	if got := NextSet(row, 69); got != 69 {
		t.Fatalf("NextSet(from == bit) = %d, want 69", got)
	}
	if got := NextSet(row, 70); got != -1 {
		t.Fatalf("NextSet(past last bit) = %d, want -1", got)
	}
	if got := NextSet(row, 4096); got != -1 {
		t.Fatalf("NextSet(from beyond row) = %d, want -1", got)
	}
}

func TestNextSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		row := make([]uint64, (n+63)/64)
		var want []int
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.1 {
				row[i>>6] |= 1 << uint(i&63)
				want = append(want, i)
			}
		}
		var got []int
		for i := NextSet(row, 0); i >= 0; i = NextSet(row, i+1) {
			got = append(got, i)
		}
		if !equalInts(got, want) {
			t.Fatalf("trial %d: NextSet walk = %v, want %v", trial, got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: walk not ascending: %v", trial, got)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
