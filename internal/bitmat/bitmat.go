// Package bitmat implements the vertical bitmap counting layout: for a set
// of items it materializes, in one database pass, a word-packed bitmap over
// transaction positions — bit i of item x's row is set iff transaction i
// (in scan order) supports x. Candidate support then becomes an AND +
// popcount loop over []uint64 rows instead of per-transaction subset
// probing, which is the Eclat/Partition-style vertical representation the
// paper's authors pioneered (Savasere–Omiecinski–Navathe, VLDB 1995).
//
// Two builders are provided:
//
//   - FromDB sets bits from each (optionally transformed) transaction —
//     the generic path, correct for any transform.
//   - FromDBTaxonomy sets bits from raw transactions and their taxonomy
//     ancestors, materializing the ancestor closure directly: a category's
//     row ends up equal to the OR of its children's rows (and, more
//     precisely, of all its descendant leaves — including leaves too
//     infrequent to have rows of their own), so Cumulate's transaction
//     extension costs nothing at counting time.
//
// A Matrix is immutable after construction and safe for concurrent readers;
// Counts shards candidates (not transactions) across workers, each with its
// own scratch row.
package bitmat

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// Matrix is a set of per-item bitmaps over transaction positions, stored
// row-major in one contiguous word slice.
type Matrix struct {
	n     int   // transactions (bits per row)
	words int   // words per row: ceil(n/64)
	items item.Itemset
	index map[item.Item]int32 // item → row number
	bits  []uint64            // len = len(items)*words
}

// New allocates an all-zero matrix with one row per item over n
// transactions.
func New(items item.Itemset, n int) *Matrix {
	words := (n + 63) / 64
	m := &Matrix{
		n:     n,
		words: words,
		items: items.Clone(),
		index: make(map[item.Item]int32, items.Len()),
		bits:  make([]uint64, items.Len()*words),
	}
	for i, x := range m.items {
		m.index[x] = int32(i)
	}
	return m
}

// N returns the number of transactions (bits per row).
func (m *Matrix) N() int { return m.n }

// Words returns the number of 64-bit words per row.
func (m *Matrix) Words() int { return m.words }

// Items returns the sorted items that have rows (shared slice).
func (m *Matrix) Items() item.Itemset { return m.items }

// Bytes returns the size of the bit storage in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.bits)) * 8 }

// EstimateBytes returns the bit-storage size of a matrix over nTx
// transactions and nItems rows, for backend-selection budgeting.
func EstimateBytes(nTx, nItems int) int64 {
	return int64(nItems) * int64((nTx+63)/64) * 8
}

// Row returns item x's bitmap (shared slice; callers must not modify), or
// nil if x has no row.
func (m *Matrix) Row(x item.Item) []uint64 {
	r, ok := m.index[x]
	if !ok {
		return nil
	}
	return m.bits[int(r)*m.words : (int(r)+1)*m.words]
}

// set marks transaction position tid as supporting row r.
func (m *Matrix) set(r int32, tid int) {
	m.bits[int(r)*m.words+tid>>6] |= 1 << uint(tid&63)
}

// Set marks position pos in item x's row and reports whether x has a row.
// It is the position-by-position builder used by callers that assemble a
// matrix from something other than a database scan — e.g. the serving
// snapshot, which builds rule posting lists by setting bit (x, ruleID) for
// every rule mentioning x.
func (m *Matrix) Set(x item.Item, pos int) bool {
	r, ok := m.index[x]
	if !ok {
		return false
	}
	m.set(r, pos)
	return true
}

// NextSet returns the position of the first set bit at or after from in
// row, or -1 when no further bit is set. Iterating
//
//	for i := NextSet(row, 0); i >= 0; i = NextSet(row, i+1) { ... }
//
// visits the set positions in ascending order — the rank-select walk query
// layers use to enumerate a bitmap posting list in presorted order.
func NextSet(row []uint64, from int) int {
	if from < 0 {
		from = 0
	}
	w := from >> 6
	if w >= len(row) {
		return -1
	}
	// Mask off bits below from in the first word, then scan whole words.
	if word := row[w] >> uint(from&63); word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	for w++; w < len(row); w++ {
		if row[w] != 0 {
			return w<<6 + bits.TrailingZeros64(row[w])
		}
	}
	return -1
}

// Transform maps a transaction's itemset before bits are set, appending the
// result into dst (a reusable buffer). It mirrors count.TransformInto
// structurally so the two packages stay decoupled.
type Transform func(dst []item.Item, s item.Itemset) item.Itemset

// FromDB builds rows for items over one pass of db, applying transform (nil
// = identity) to every transaction. Items in a (transformed) transaction
// without a row are ignored, so callers must include every item they intend
// to count.
func FromDB(db txdb.DB, items item.Itemset, transform Transform) (*Matrix, error) {
	m := New(items, db.Count())
	buf := make([]item.Item, 0, 64)
	tid := 0
	err := db.Scan(func(tx txdb.Transaction) error {
		if tid >= m.n {
			return fmt.Errorf("bitmat: scan produced more than Count() = %d transactions", m.n)
		}
		s := tx.Items
		if transform != nil {
			s = transform(buf[:0], s)
			buf = s[:0]
		}
		for _, x := range s {
			if r, ok := m.index[x]; ok {
				m.set(r, tid)
			}
		}
		tid++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FromDBTaxonomy builds rows for items over one pass of db's raw
// transactions, setting each item's bit and the bits of all its taxonomy
// ancestors — the ancestor-closure build. A category row therefore equals
// the OR of its children's rows; the closure is walked directly rather than
// OR-composed so that descendant leaves *without* rows of their own (e.g.
// small 1-itemsets pruned from candidate generation) still contribute to
// their ancestors' support, exactly as the paper requires.
func FromDBTaxonomy(db txdb.DB, tax *taxonomy.Taxonomy, items item.Itemset) (*Matrix, error) {
	if tax == nil {
		return FromDB(db, items, nil)
	}
	m := New(items, db.Count())
	tid := 0
	err := db.Scan(func(tx txdb.Transaction) error {
		if tid >= m.n {
			return fmt.Errorf("bitmat: scan produced more than Count() = %d transactions", m.n)
		}
		for _, x := range tx.Items {
			if r, ok := m.index[x]; ok {
				m.set(r, tid)
			}
			for _, a := range tax.AncestorsOf(x) {
				if r, ok := m.index[a]; ok {
					m.set(r, tid)
				}
			}
		}
		tid++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// And writes a AND b into dst. All three must have equal length.
func And(dst, a, b []uint64) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = a[i] & b[i]
	}
}

// AndInto folds src into dst: dst &= src.
func AndInto(dst, src []uint64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] &= src[i]
	}
}

// Or writes a OR b into dst. All three must have equal length.
func Or(dst, a, b []uint64) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i := range a {
		dst[i] = a[i] | b[i]
	}
}

// OrInto folds src into dst: dst |= src.
func OrInto(dst, src []uint64) {
	_ = src[len(dst)-1]
	for i := range dst {
		dst[i] |= src[i]
	}
}

// PopCount returns the number of set bits in a.
func PopCount(a []uint64) int {
	n := 0
	for _, w := range a {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndPopCount returns the number of set bits in a AND b without
// materializing the intersection.
func AndPopCount(a, b []uint64) int {
	_ = b[len(a)-1]
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// Support returns the number of transactions containing every item of c —
// the popcount of the AND of c's rows. scratch is a reusable row of at
// least m.Words() words (nil allocates one); it is only written for
// candidates of three or more items. An item without a row is an error:
// the matrix was built over the wrong item set.
func (m *Matrix) Support(c item.Itemset, scratch []uint64) (int, error) {
	switch c.Len() {
	case 0:
		return m.n, nil
	case 1:
		r := m.Row(c[0])
		if r == nil {
			return 0, fmt.Errorf("bitmat: no row for item %d", c[0])
		}
		return PopCount(r), nil
	case 2:
		a, b := m.Row(c[0]), m.Row(c[1])
		if a == nil || b == nil {
			return 0, fmt.Errorf("bitmat: no row for item in %v", c)
		}
		return AndPopCount(a, b), nil
	}
	if scratch == nil {
		scratch = make([]uint64, m.words)
	}
	scratch = scratch[:m.words]
	a, b := m.Row(c[0]), m.Row(c[1])
	if a == nil || b == nil {
		return 0, fmt.Errorf("bitmat: no row for item in %v", c)
	}
	And(scratch, a, b)
	for _, x := range c[2:] {
		r := m.Row(x)
		if r == nil {
			return 0, fmt.Errorf("bitmat: no row for item %d", x)
		}
		AndInto(scratch, r)
	}
	return PopCount(scratch), nil
}

// Counts returns the support count of every candidate, sharding candidates
// across workers (values < 2 count sequentially). The matrix is read-only
// during counting, so workers share it without synchronization; each keeps
// its own scratch row and writes disjoint result slots.
func (m *Matrix) Counts(cands []item.Itemset, workers int) ([]int, error) {
	out := make([]int, len(cands))
	if len(cands) == 0 {
		return out, nil
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 2 {
		scratch := make([]uint64, m.words)
		for i, c := range cands {
			n, err := m.Support(c, scratch)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scratch := make([]uint64, m.words)
			for i := lo; i < hi; i++ {
				n, err := m.Support(cands[i], scratch)
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = n
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultWorkers is the worker count used when callers pass 0 to parallel
// drivers: every logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }
