package bitmat

import (
	"math/rand"
	"testing"

	"negmine/internal/item"
	"negmine/internal/taxonomy"
	"negmine/internal/txdb"
)

// randomDB builds a MemDB of n transactions over items [0, nItems), each
// item present independently with probability p.
func randomDB(t *testing.T, rng *rand.Rand, n, nItems int, p float64) *txdb.MemDB {
	t.Helper()
	txs := make([]txdb.Transaction, n)
	for i := range txs {
		var s []item.Item
		for x := 0; x < nItems; x++ {
			if rng.Float64() < p {
				s = append(s, item.Item(x))
			}
		}
		txs[i] = txdb.Transaction{TID: int64(i + 1), Items: item.New(s...)}
	}
	db, err := txdb.NewMemDB(txs)
	if err != nil {
		t.Fatalf("NewMemDB: %v", err)
	}
	return db
}

// bruteSupport counts transactions of db whose (transformed) itemset
// contains every item of c.
func bruteSupport(t *testing.T, db txdb.DB, c item.Itemset, transform func(item.Itemset) item.Itemset) int {
	t.Helper()
	n := 0
	err := db.Scan(func(tx txdb.Transaction) error {
		s := tx.Items
		if transform != nil {
			s = transform(s)
		}
		if c.SubsetOf(s) {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return n
}

// randomCandidates draws sets of size 1..4 over the given universe.
func randomCandidates(rng *rand.Rand, universe item.Itemset, n int) []item.Itemset {
	cands := make([]item.Itemset, n)
	for i := range cands {
		k := 1 + rng.Intn(4)
		var s []item.Item
		for j := 0; j < k; j++ {
			s = append(s, universe[rng.Intn(len(universe))])
		}
		cands[i] = item.New(s...)
	}
	return cands
}

func TestSupportMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		nItems := 12 + rng.Intn(8)
		db := randomDB(t, rng, 80+rng.Intn(120), nItems, 0.25)
		universe := make(item.Itemset, nItems)
		for i := range universe {
			universe[i] = item.Item(i)
		}
		m, err := FromDB(db, universe, nil)
		if err != nil {
			t.Fatalf("FromDB: %v", err)
		}
		if m.N() != db.Count() {
			t.Fatalf("N = %d, want %d", m.N(), db.Count())
		}
		scratch := make([]uint64, m.Words())
		for _, c := range randomCandidates(rng, universe, 60) {
			got, err := m.Support(c, scratch)
			if err != nil {
				t.Fatalf("Support(%v): %v", c, err)
			}
			if want := bruteSupport(t, db, c, nil); got != want {
				t.Fatalf("Support(%v) = %d, want %d", c, got, want)
			}
		}
		// Empty candidate: every transaction supports it.
		if got, _ := m.Support(nil, nil); got != db.Count() {
			t.Fatalf("Support(∅) = %d, want %d", got, db.Count())
		}
	}
}

func TestFromDBAppliesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomDB(t, rng, 100, 10, 0.3)
	// Shift transform: every transaction gains item x+10 for each item x.
	shift := func(s item.Itemset) item.Itemset {
		out := s.Clone()
		for _, x := range s {
			out = out.With(x + 10)
		}
		return out
	}
	shiftInto := func(dst []item.Item, s item.Itemset) item.Itemset {
		for _, x := range s {
			dst = append(dst, x, x+10)
		}
		return item.SortDedup(dst)
	}
	universe := make(item.Itemset, 20)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	m, err := FromDB(db, universe, shiftInto)
	if err != nil {
		t.Fatalf("FromDB: %v", err)
	}
	for _, c := range randomCandidates(rng, universe, 50) {
		got, err := m.Support(c, nil)
		if err != nil {
			t.Fatalf("Support(%v): %v", c, err)
		}
		if want := bruteSupport(t, db, c, shift); got != want {
			t.Fatalf("Support(%v) = %d, want %d", c, got, want)
		}
	}
}

// buildTax returns a two-level taxonomy: categories c0..c3, each with 4
// leaf children, leaves are ids of the category's children.
func buildTax(t *testing.T) (*taxonomy.Taxonomy, item.Itemset) {
	t.Helper()
	b := taxonomy.NewBuilder()
	var leaves item.Itemset
	for c := 0; c < 4; c++ {
		cat := string(rune('A' + c))
		for l := 0; l < 4; l++ {
			_, leaf := b.Link(cat, cat+string(rune('0'+l)))
			leaves = append(leaves, leaf)
		}
	}
	tax, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tax, item.New(leaves...)
}

func TestFromDBTaxonomyMatchesExtendOracle(t *testing.T) {
	tax, leaves := buildTax(t)
	rng := rand.New(rand.NewSource(3))
	txs := make([]txdb.Transaction, 150)
	for i := range txs {
		var s []item.Item
		for _, l := range leaves {
			if rng.Float64() < 0.2 {
				s = append(s, l)
			}
		}
		txs[i] = txdb.Transaction{TID: int64(i + 1), Items: item.New(s...)}
	}
	db, err := txdb.NewMemDB(txs)
	if err != nil {
		t.Fatalf("NewMemDB: %v", err)
	}
	// Rows for every node: leaves and categories.
	all := leaves.Union(tax.Categories())
	m, err := FromDBTaxonomy(db, tax, all)
	if err != nil {
		t.Fatalf("FromDBTaxonomy: %v", err)
	}
	for _, c := range randomCandidates(rng, all, 80) {
		got, err := m.Support(c, nil)
		if err != nil {
			t.Fatalf("Support(%v): %v", c, err)
		}
		if want := bruteSupport(t, db, c, tax.Extend); got != want {
			t.Fatalf("Support(%v) = %d, want %d", c, got, want)
		}
	}
}

// TestCategoryRowIsOrOfChildren checks the closure property the package doc
// promises: when every child has a row, a category's row equals the OR of
// its children's rows.
func TestCategoryRowIsOrOfChildren(t *testing.T) {
	tax, leaves := buildTax(t)
	rng := rand.New(rand.NewSource(4))
	txs := make([]txdb.Transaction, 99) // odd count: exercises a ragged last word
	for i := range txs {
		var s []item.Item
		for _, l := range leaves {
			if rng.Float64() < 0.3 {
				s = append(s, l)
			}
		}
		txs[i] = txdb.Transaction{TID: int64(i + 1), Items: item.New(s...)}
	}
	db, err := txdb.NewMemDB(txs)
	if err != nil {
		t.Fatalf("NewMemDB: %v", err)
	}
	all := leaves.Union(tax.Categories())
	m, err := FromDBTaxonomy(db, tax, all)
	if err != nil {
		t.Fatalf("FromDBTaxonomy: %v", err)
	}
	for _, cat := range tax.Categories() {
		want := make([]uint64, m.Words())
		for _, ch := range tax.Children(cat) {
			OrInto(want, m.Row(ch))
		}
		got := m.Row(cat)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("category %v row word %d = %x, want OR of children %x", cat, i, got[i], want[i])
			}
		}
	}
}

// TestInfrequentLeafStillCountsForCategory pins the design decision to set
// ancestor bits from raw items rather than OR-composing materialized child
// rows: a leaf with no row of its own must still contribute to its
// category's support.
func TestInfrequentLeafStillCountsForCategory(t *testing.T) {
	tax, leaves := buildTax(t)
	rare := leaves[0]
	db := txdb.FromItemsets(
		[]item.Item{rare},
		[]item.Item{leaves[5]},
	)
	cats := tax.Categories()
	// Only categories get rows; no leaf rows at all.
	m, err := FromDBTaxonomy(db, tax, cats)
	if err != nil {
		t.Fatalf("FromDBTaxonomy: %v", err)
	}
	rareCat := tax.Parent(rare)
	got, err := m.Support(item.New(rareCat), nil)
	if err != nil {
		t.Fatalf("Support: %v", err)
	}
	if got != 1 {
		t.Fatalf("category of row-less leaf has support %d, want 1", got)
	}
}

func TestCountsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(t, rng, 200, 20, 0.25)
	universe := make(item.Itemset, 20)
	for i := range universe {
		universe[i] = item.Item(i)
	}
	m, err := FromDB(db, universe, nil)
	if err != nil {
		t.Fatalf("FromDB: %v", err)
	}
	cands := randomCandidates(rng, universe, 301) // odd count: ragged last shard
	seq, err := m.Counts(cands, 1)
	if err != nil {
		t.Fatalf("Counts(seq): %v", err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := m.Counts(cands, workers)
		if err != nil {
			t.Fatalf("Counts(%d): %v", workers, err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: count[%d] = %d, want %d", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestSupportMissingRow(t *testing.T) {
	db := txdb.FromItemsets([]item.Item{0, 1})
	m, err := FromDB(db, item.New(0, 1), nil)
	if err != nil {
		t.Fatalf("FromDB: %v", err)
	}
	for _, c := range []item.Itemset{
		item.New(9),
		item.New(0, 9),
		item.New(0, 1, 9),
	} {
		if _, err := m.Support(c, nil); err == nil {
			t.Fatalf("Support(%v): expected error for missing row", c)
		}
	}
	if _, err := m.Counts([]item.Itemset{item.New(9)}, 1); err == nil {
		t.Fatal("Counts: expected error for missing row")
	}
	if _, err := m.Counts([]item.Itemset{item.New(9), item.New(0)}, 2); err == nil {
		t.Fatal("Counts parallel: expected error for missing row")
	}
}

// lyingDB reports a smaller Count than its scan produces.
type lyingDB struct{ *txdb.MemDB }

func (l lyingDB) Count() int { return l.MemDB.Count() - 1 }

func TestFromDBScanOverflow(t *testing.T) {
	db := txdb.FromItemsets([]item.Item{0}, []item.Item{1}, []item.Item{0, 1})
	if _, err := FromDB(lyingDB{db}, item.New(0, 1), nil); err == nil {
		t.Fatal("FromDB: expected error when scan exceeds Count()")
	}
	if _, err := FromDBTaxonomy(lyingDB{db}, mustTax(t), item.New(0, 1)); err == nil {
		t.Fatal("FromDBTaxonomy: expected error when scan exceeds Count()")
	}
}

func mustTax(t *testing.T) *taxonomy.Taxonomy {
	t.Helper()
	tax, _ := buildTax(t)
	return tax
}

func TestKernels(t *testing.T) {
	a := []uint64{0b1100, 0b1010, ^uint64(0)}
	b := []uint64{0b1010, 0b0110, 0}
	dst := make([]uint64, 3)
	And(dst, a, b)
	if dst[0] != 0b1000 || dst[1] != 0b0010 || dst[2] != 0 {
		t.Fatalf("And = %x", dst)
	}
	Or(dst, a, b)
	if dst[0] != 0b1110 || dst[1] != 0b1110 || dst[2] != ^uint64(0) {
		t.Fatalf("Or = %x", dst)
	}
	copy(dst, a)
	AndInto(dst, b)
	if dst[0] != 0b1000 {
		t.Fatalf("AndInto = %x", dst)
	}
	copy(dst, a)
	OrInto(dst, b)
	if dst[0] != 0b1110 {
		t.Fatalf("OrInto = %x", dst)
	}
	if got := PopCount(a); got != 2+2+64 {
		t.Fatalf("PopCount = %d", got)
	}
	if got := AndPopCount(a, b); got != 1+1+0 {
		t.Fatalf("AndPopCount = %d", got)
	}
}

func TestEstimateBytes(t *testing.T) {
	if got := EstimateBytes(64, 10); got != 80 {
		t.Fatalf("EstimateBytes(64,10) = %d, want 80", got)
	}
	if got := EstimateBytes(65, 10); got != 160 {
		t.Fatalf("EstimateBytes(65,10) = %d, want 160", got)
	}
	db := txdb.FromItemsets([]item.Item{0, 1, 2})
	m, err := FromDB(db, item.New(0, 1, 2), nil)
	if err != nil {
		t.Fatalf("FromDB: %v", err)
	}
	if m.Bytes() != EstimateBytes(db.Count(), 3) {
		t.Fatalf("Bytes = %d, estimate %d", m.Bytes(), EstimateBytes(db.Count(), 3))
	}
}
