package negmine_test

import (
	"fmt"
	"log"
	"strings"

	"negmine"
)

// Example mines negative rules end to end: pepsi sells well, chips sell
// well, but they almost never sell together — far below what the taxonomy
// (pepsi and coke are sibling sodas, and coke moves with chips) predicts.
func Example() {
	tax, err := negmine.ParseTaxonomy(strings.NewReader(`
		soda coke
		soda pepsi
		snacks chips`))
	if err != nil {
		log.Fatal(err)
	}
	baskets := strings.Repeat("coke chips\n", 8) +
		"coke\ncoke\n" +
		strings.Repeat("pepsi\n", 5) +
		"chips\nchips\nchips\nchips\nchips\n"
	db, err := negmine.ReadBaskets(strings.NewReader(baskets), tax.Dictionary())
	if err != nil {
		log.Fatal(err)
	}
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{
		MinSupport: 0.2,
		MinRI:      0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rules {
		fmt.Println(r.Format(tax.Name))
	}
	// Output:
	// {pepsi} =/=> {snacks} (RI=0.8000 exp=0.2000 act=0.0000)
	// {pepsi} =/=> {chips} (RI=0.8000 exp=0.2000 act=0.0000)
}

// ExampleMineFrequent shows classic Apriori plus positive rule generation.
func ExampleMineFrequent() {
	db := negmine.FromItemsets(
		[]negmine.Item{1, 3, 4},
		[]negmine.Item{2, 3, 5},
		[]negmine.Item{1, 2, 3, 5},
		[]negmine.Item{2, 5},
	)
	res, err := negmine.MineFrequent(db, negmine.FrequentOptions{MinSupport: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	rules, err := negmine.GenerateRules(res, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("large itemsets:", len(res.Large()))
	fmt.Println("first rule:", rules[0])
	// Output:
	// large itemsets: 9
	// first rule: {1} => {3} (sup=0.5000 conf=1.0000)
}

// ExampleGenerateData runs the paper's synthetic retail generator.
func ExampleGenerateData() {
	p := negmine.ScaleDataParams(negmine.ShortDataParams(), 100)
	p.Seed = 1
	tax, db, err := negmine.GenerateData(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transactions:", db.Count())
	fmt.Println("leaf items:", tax.Leaves().Len())
	// Output:
	// transactions: 500
	// leaf items: 80
}
