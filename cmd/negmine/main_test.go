package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
	"negmine/internal/rulestore"
	"negmine/internal/serve"
)

func writeFixtures(t *testing.T) (dataPath, taxPath string) {
	t.Helper()
	dir := t.TempDir()
	taxPath = filepath.Join(dir, "tax.txt")
	dataPath = filepath.Join(dir, "baskets.txt")
	tax := `
beverages soda
beverages juice
soda coke
soda pepsi
snacks chips
snacks pretzels
`
	baskets := strings.Repeat("coke chips\n", 8) +
		"coke\ncoke\npepsi\npepsi\npepsi\npepsi\npepsi chips\n" +
		"juice chips\njuice chips\ncoke pretzels\ncoke pretzels\npretzels\n"
	if err := os.WriteFile(taxPath, []byte(tax), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataPath, []byte(baskets), 0o644); err != nil {
		t.Fatal(err)
	}
	return dataPath, taxPath
}

func TestRunEndToEnd(t *testing.T) {
	data, tax := writeFixtures(t)
	var out bytes.Buffer
	err := run([]string{
		"-data", data, "-tax", tax,
		"-minsup", "0.15", "-minri", "0.3",
		"-positive", "-negatives",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"loaded 20 transactions",
		"negative rules:",
		"{pepsi} =/=> {chips}",
		"positive generalized rules",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBinaryInput(t *testing.T) {
	data, tax := writeFixtures(t)
	// Convert the basket file to binary and mine that.
	dict := negmine.NewDictionary()
	f, err := os.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	db, err := negmine.ReadBaskets(f, dict)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	_ = db
	// The binary path shares ids with a fresh dictionary, which will not
	// line up with the taxonomy's ids — so instead verify the loader path
	// rejects a malformed .nmtx and accepts a real one structurally.
	bin := filepath.Join(t.TempDir(), "x.nmtx")
	if err := negmine.SaveDB(bin, db); err != nil {
		t.Fatal(err)
	}
	got, err := loadData(bin, dict)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != db.Count() {
		t.Errorf("binary loadData count = %d, want %d", got.Count(), db.Count())
	}
	var out bytes.Buffer
	if err := run([]string{"-data", filepath.Join(t.TempDir(), "missing.nmtx"), "-tax", tax}, &out); err == nil {
		t.Error("missing binary accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	data, tax := writeFixtures(t)
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"-data", data},
		{"-tax", tax},
		{"-data", data, "-tax", tax, "-alg", "wrong"},
		{"-data", data, "-tax", tax, "-gen", "wrong"},
		{"-data", data, "-tax", tax, "-minsup", "0"},
	}
	for i, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("case %d: args %v accepted", i, args)
		}
	}
}

func TestParseGenAlg(t *testing.T) {
	for name, want := range map[string]negmine.GenAlgorithm{
		"basic": negmine.Basic, "CUMULATE": negmine.Cumulate, "EstMerge": negmine.EstMerge,
	} {
		got, err := parseGenAlg(name)
		if err != nil || got != want {
			t.Errorf("parseGenAlg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseGenAlg("nope"); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestRunJSONAndCSV(t *testing.T) {
	data, tax := writeFixtures(t)
	var out bytes.Buffer
	err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3", "-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if _, ok := decoded["rules"]; !ok {
		t.Error("JSON missing rules key")
	}

	out.Reset()
	err = run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "antecedent,consequent") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}

	if err := run([]string{"-data", data, "-tax", tax, "-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestUsageMentionsNegmined pins that -h documents the report-JSON handoff
// to the serving daemon.
func TestUsageMentionsNegmined(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(out.String(), "negmined") {
		t.Errorf("usage does not mention negmined:\n%s", out.String())
	}
}

// TestJSONServeRoundTrip walks the full pipeline the usage text promises:
// mine with -format json, load the report into a serving snapshot, and
// query it back for the known rule {pepsi} =/=> {chips}.
func TestJSONServeRoundTrip(t *testing.T) {
	data, taxPath := writeFixtures(t)
	var out bytes.Buffer
	err := run([]string{"-data", data, "-tax", taxPath, "-minsup", "0.15", "-minri", "0.3", "-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rulestore.Load(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("report JSON does not load as a rule store: %v", err)
	}
	f, err := os.Open(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	tax, err := negmine.ParseTaxonomy(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap := serve.BuildSnapshot(st, tax, serve.Meta{Source: "test"})
	if snap.Len() != st.Len() {
		t.Fatalf("snapshot has %d rules, store has %d", snap.Len(), st.Len())
	}
	isPepsiChips := func(e rulestore.Entry) bool {
		return len(e.Antecedent) == 1 && e.Antecedent[0] == "pepsi" &&
			len(e.Consequent) == 1 && e.Consequent[0] == "chips"
	}
	hasPepsiChips := func(got []rulestore.Entry) bool {
		for _, e := range got {
			if isPepsiChips(e) {
				return true
			}
		}
		return false
	}
	// The rule is reachable from both sides of the index.
	if got := snap.QueryEntries("pepsi", 0, 0); !hasPepsiChips(got) {
		t.Errorf("QueryItem(pepsi) missing {pepsi} =/=> {chips}: %v", got)
	}
	if got := snap.QueryEntries("chips", 0, 0); !hasPepsiChips(got) {
		t.Errorf("QueryItem(chips) missing {pepsi} =/=> {chips}: %v", got)
	}
	// And a basket containing pepsi triggers it.
	triggered := false
	for _, m := range snap.Matches([]string{"pepsi"}, 0, 0) {
		if isPepsiChips(m.Rule) && m.Triggers["pepsi"] == "pepsi" {
			triggered = true
		}
	}
	if !triggered {
		t.Error("Score([pepsi]) did not trigger {pepsi} =/=> {chips}")
	}
}

func TestRunSubstitutesAndFilters(t *testing.T) {
	data, tax := writeFixtures(t)
	dir := t.TempDir()
	subs := filepath.Join(dir, "subs.txt")
	os.WriteFile(subs, []byte("# cola substitutes\ncoke pepsi\n"), 0o644)
	var out bytes.Buffer
	err := run([]string{
		"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3",
		"-subs", subs, "-filter", "absolute",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "negative rules:") {
		t.Errorf("output missing rules section:\n%s", out.String())
	}
	// Unknown item name in substitutes file.
	os.WriteFile(subs, []byte("coke nonexistent\n"), 0o644)
	if err := run([]string{"-data", data, "-tax", tax, "-subs", subs}, &out); err == nil {
		t.Error("unknown substitute item accepted")
	}
	if err := run([]string{"-data", data, "-tax", tax, "-filter", "weird"}, &out); err == nil {
		t.Error("unknown filter accepted")
	}
}

func TestRunInterestingPrune(t *testing.T) {
	data, tax := writeFixtures(t)
	var plain, pruned bytes.Buffer
	if err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-positive"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-positive", "-interesting", "1.1"}, &pruned); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pruned.String(), "R-interesting at 1.10") {
		t.Errorf("pruned header missing:\n%s", pruned.String())
	}
	if strings.Count(pruned.String(), "=>") > strings.Count(plain.String(), "=>") {
		t.Error("pruning increased rule count")
	}
}

func TestRunExplain(t *testing.T) {
	data, tax := writeFixtures(t)
	var out bytes.Buffer
	err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3", "-explain"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "derivations:") || !strings.Contains(out.String(), "uniformity assumption") {
		t.Errorf("explain output missing:\n%s", out.String())
	}
}

func TestRunDiff(t *testing.T) {
	data, tax := writeFixtures(t)
	// First run exported as JSON becomes the baseline.
	var baseline bytes.Buffer
	if err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3", "-format", "json"}, &baseline); err != nil {
		t.Fatal(err)
	}
	prev := filepath.Join(t.TempDir(), "prev.json")
	if err := os.WriteFile(prev, baseline.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Second identical run diffed against it: everything unchanged.
	var out bytes.Buffer
	if err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.15", "-minri", "0.3", "-diff", prev}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 appeared, 0 disappeared, 0 changed") {
		t.Errorf("diff output unexpected:\n%s", out.String())
	}
	if err := run([]string{"-data", data, "-tax", tax, "-diff", "/missing.json"}, &out); err == nil {
		t.Error("missing diff baseline accepted")
	}
}
