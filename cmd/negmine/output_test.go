package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine/internal/atomicio"
	"negmine/internal/fault"
	"negmine/internal/report"
)

// TestOutputFlagWritesReportFile: -o writes the same JSON document stdout
// would carry, and the file round-trips through the report reader.
func TestOutputFlagWritesReportFile(t *testing.T) {
	data, tax := writeFixtures(t)
	outFile := filepath.Join(t.TempDir(), "rules.json")

	var stdout bytes.Buffer
	err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.1", "-format", "json", "-o", outFile}, &stdout)
	if err != nil {
		t.Fatalf("run with -o: %v", err)
	}
	if !strings.Contains(stdout.String(), "wrote "+outFile) {
		t.Fatalf("stdout missing confirmation: %q", stdout.String())
	}

	f, err := os.Open(outFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := report.ReadNegativeJSON(f)
	if err != nil {
		t.Fatalf("reading -o output back: %v", err)
	}
	if rep.MinSupport != 0.1 {
		t.Fatalf("report minSupport = %v, want 0.1", rep.MinSupport)
	}

	// The file content matches a stdout run byte for byte.
	var direct bytes.Buffer
	if err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.1", "-format", "json"}, &direct); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, direct.Bytes()) {
		t.Fatal("-o file differs from stdout output")
	}
}

// TestKilledOutputWriteKeepsOldReport arms the atomicio write failpoint so
// the run dies mid-write: the previous report must survive untouched and no
// temp file may be left behind.
func TestKilledOutputWriteKeepsOldReport(t *testing.T) {
	data, tax := writeFixtures(t)
	dir := t.TempDir()
	outFile := filepath.Join(dir, "rules.json")
	old := []byte(`{"minSupport":0.5,"minRI":0.5,"rules":null,"negativeItemsets":null}`)
	if err := os.WriteFile(outFile, old, 0o644); err != nil {
		t.Fatal(err)
	}

	defer fault.Enable(atomicio.PointWrite, fault.Error("disk died"), fault.OnHit(1))()
	var stdout bytes.Buffer
	err := run([]string{"-data", data, "-tax", tax, "-minsup", "0.1", "-format", "json", "-o", outFile}, &stdout)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("run with dying write = %v, want injected error", err)
	}

	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("previous report was damaged by the failed write:\n%s", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp-file litter after failed write: %v", entries)
	}
}
