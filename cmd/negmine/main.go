// Command negmine mines association rules — positive and negative — from a
// transaction file and an item taxonomy.
//
// Usage:
//
//	negmine -data baskets.txt -tax taxonomy.txt -minsup 0.02 -minri 0.5
//
// Flags:
//
//	-data file     transactions: basket text (one basket per line) or the
//	               library's binary format (.nmtx)
//	-tax file      taxonomy: "parent child" edges, one per line
//	-minsup f      minimum relative support (default 0.02)
//	-minri f       minimum rule interest for negative rules (default 0.5)
//	-minconf f     minimum confidence for positive rules (default 0.6)
//	-alg name      negative algorithm: better (default) or naive
//	-gen name      stage-1 algorithm: basic, cumulate (default), estmerge
//	-positive      also mine and print positive generalized rules
//	-negatives     print confirmed negative itemsets as well as rules
//	-parallel n    counting workers (default 1)
//	-backend name  counting backend: auto (default), hashtree or bitmap
//	-maxk n        cap large-itemset size (0 = unlimited)
//	-format name   text (default), json or csv; `-format json` writes the
//	               report document that cmd/negmined serves online
//	               (negmined -report rules.json) and that -diff reads back
//	-o file        write results to this file atomically (temp + fsync +
//	               rename) instead of stdout; a crash mid-write never
//	               truncates an existing report
//	-snap file     also write the rule set as a binary .nsnap snapshot,
//	               the mmap-loadable serving format (negmined boots from it
//	               instantly; inspect with `nmtx snap info`)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"negmine"
	"negmine/internal/atomicio"
	"negmine/internal/report"
	"negmine/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "negmine:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("negmine", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dataPath  = fs.String("data", "", "transaction file (basket text or .nmtx binary)")
		taxPath   = fs.String("tax", "", "taxonomy file (parent child edges)")
		minSup    = fs.Float64("minsup", 0.02, "minimum relative support")
		minRI     = fs.Float64("minri", 0.5, "minimum rule interest")
		minConf   = fs.Float64("minconf", 0.6, "minimum confidence for positive rules")
		algName   = fs.String("alg", "better", "negative algorithm: better or naive")
		genName   = fs.String("gen", "cumulate", "stage-1 algorithm: basic, cumulate or estmerge")
		positive  = fs.Bool("positive", false, "also mine positive generalized rules")
		negatives = fs.Bool("negatives", false, "print negative itemsets too")
		parallel  = fs.Int("parallel", 1, "counting workers")
		backend   = fs.String("backend", "auto", "counting backend: auto, hashtree or bitmap")
		memBudget = fs.String("mem-budget", "auto", "mining memory budget, e.g. 2GiB (auto = 80% of GOMEMLIMIT/cgroup limit, off = unlimited)")
		maxK      = fs.Int("maxk", 0, "cap large-itemset size (0 = unlimited)")
		format    = fs.String("format", "text", "output format: text, json or csv (json is the report negmined -report serves and -diff reads)")
		subsPath  = fs.String("subs", "", "substitute-group file: one group of item names per line")
		interest  = fs.Float64("interesting", 0, "prune positive rules to the R-interesting ones (0 = off; try 1.1)")
		filter    = fs.String("filter", "deviation", "negative-itemset filter: deviation (§2) or absolute (Figure 3)")
		explain   = fs.Bool("explain", false, "print the full derivation of every negative rule")
		diffPath  = fs.String("diff", "", "previous run's JSON report: print appeared/disappeared/changed rules")
		outPath   = fs.String("o", "", "write results to this file instead of stdout (atomic: temp file + fsync + rename, so a crash never truncates an existing report)")
		snapPath  = fs.String("snap", "", "also write the mined rule set as a binary .nsnap snapshot (mmap-loadable by negmined; atomic write)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *taxPath == "" {
		fs.Usage()
		return fmt.Errorf("-data and -tax are required")
	}

	taxFile, err := os.Open(*taxPath)
	if err != nil {
		return err
	}
	tax, err := negmine.ParseTaxonomy(taxFile)
	taxFile.Close()
	if err != nil {
		return err
	}

	db, err := loadData(*dataPath, tax.Dictionary())
	if err != nil {
		return err
	}
	switch strings.ToLower(*format) {
	case "text", "json", "csv":
	default:
		return fmt.Errorf("unknown -format %q (want text, json or csv)", *format)
	}
	if strings.ToLower(*format) == "text" {
		stats, err := negmine.CollectStats(db)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %d transactions (avg length %.1f), taxonomy: %d nodes, %d leaves, height %d\n",
			stats.Transactions, stats.AvgLen, tax.Size(), tax.Leaves().Len(), tax.Height())
	}

	genAlg, err := parseGenAlg(*genName)
	if err != nil {
		return err
	}
	negAlg := negmine.Improved
	switch strings.ToLower(*algName) {
	case "better", "improved":
	case "naive":
		negAlg = negmine.Naive
	default:
		return fmt.Errorf("unknown -alg %q (want better or naive)", *algName)
	}

	opt := negmine.NegativeOptions{
		MinSupport: *minSup,
		MinRI:      *minRI,
		Algorithm:  negAlg,
		Gen:        negmine.GeneralizedOptions{Algorithm: genAlg, MaxK: *maxK},
	}
	opt.Count.Parallelism = *parallel
	opt.Gen.Count.Parallelism = *parallel
	countBackend, err := negmine.ParseCountBackend(*backend)
	if err != nil {
		return err
	}
	opt.Count.Backend = countBackend
	opt.Gen.Count.Backend = countBackend
	switch strings.ToLower(*memBudget) {
	case "auto":
		mem := negmine.DefaultMemBudget()
		opt.Count.Mem = mem
		opt.Gen.Count.Mem = mem
	case "off", "none", "0":
	default:
		n, err := negmine.ParseByteSize(*memBudget)
		if err != nil {
			return fmt.Errorf("-mem-budget: %w", err)
		}
		if n > 0 {
			mem := negmine.NewMemBudget(n)
			opt.Count.Mem = mem
			opt.Gen.Count.Mem = mem
		}
	}
	switch strings.ToLower(*filter) {
	case "deviation":
	case "absolute":
		opt.Filter = negmine.AbsoluteFilter
	default:
		return fmt.Errorf("unknown -filter %q (want deviation or absolute)", *filter)
	}
	if *subsPath != "" {
		groups, err := loadSubstitutes(*subsPath, tax.Dictionary())
		if err != nil {
			return err
		}
		opt.Substitutes = groups
	}

	res, err := negmine.MineNegative(db, tax, opt)
	if err != nil {
		return err
	}

	// emit renders the whole result document to one writer, so the same
	// code path serves stdout and the crash-safe -o file.
	emit := func(w io.Writer) error {
		switch strings.ToLower(*format) {
		case "json":
			return report.WriteNegativeJSON(w, res, *minSup, *minRI, tax.Name)
		case "csv":
			return report.WriteNegativeCSV(w, res, tax.Name)
		}

		fmt.Fprintf(w, "\nstage 1 (%v): %d generalized large itemsets in %v\n",
			genAlg, len(res.Large.Large()), res.Timing.Stage1.Round(timeUnit))
		fmt.Fprintf(w, "stage 2+3 (%v): %d candidates, %d negative itemsets, %d rules in %v\n",
			negAlg, res.TotalCandidates(), len(res.Negatives), len(res.Rules),
			res.Timing.Negative.Round(timeUnit))

		if *negatives {
			fmt.Fprintln(w, "\nnegative itemsets (expected vs actual support):")
			for _, n := range res.Negatives {
				fmt.Fprintf(w, "  %s  exp=%.4f act=%.4f\n", n.Set.Format(tax.Name), n.Expected, n.Actual())
			}
		}

		fmt.Fprintln(w, "\nnegative rules:")
		if len(res.Rules) == 0 {
			fmt.Fprintln(w, "  (none at these thresholds)")
		}
		for _, r := range res.Rules {
			fmt.Fprintf(w, "  %s\n", r.Format(tax.Name))
		}
		if *explain && len(res.Rules) > 0 {
			fmt.Fprintln(w, "\nderivations:")
			for _, r := range res.Rules {
				fmt.Fprintln(w, negmine.ExplainRule(r, res, tax.Name))
			}
		}

		if *diffPath != "" {
			f, err := os.Open(*diffPath)
			if err != nil {
				return err
			}
			old, err := negmine.LoadRuleStore(f)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nvs previous run (%s):\n", *diffPath)
			negmine.CompareRules(old, negmine.NewRuleStore(res, tax.Name), 0.05).Print(w)
		}

		if *positive {
			rules, err := negmine.GenerateRules(res.Large, *minConf)
			if err != nil {
				return err
			}
			header := fmt.Sprintf("\npositive generalized rules (minconf %.2f):", *minConf)
			if *interest > 0 {
				rules, err = negmine.PruneInteresting(rules, res.Large, tax, *interest)
				if err != nil {
					return err
				}
				header = fmt.Sprintf("\npositive generalized rules (minconf %.2f, R-interesting at %.2f):", *minConf, *interest)
			}
			sort.Slice(rules, func(i, j int) bool { return rules[i].Confidence > rules[j].Confidence })
			fmt.Fprintln(w, header)
			for _, r := range rules {
				fmt.Fprintf(w, "  %s\n", r.Format(tax.Name))
			}
		}
		return nil
	}

	if *snapPath != "" {
		// The serving-format twin of -o: the same rule set as a checksummed
		// binary snapshot that negmined boots from via mmap (generation 1,
		// the convention for standalone files outside an artifact store).
		meta := serve.Meta{Source: "mined " + *dataPath, MinSupport: *minSup, MinRI: *minRI}
		snap := serve.BuildSnapshot(negmine.NewRuleStore(res, tax.Name), tax, meta)
		if err := serve.WriteSnapshotFile(*snapPath, snap, 1); err != nil {
			return fmt.Errorf("-snap: %w", err)
		}
		if *outPath != "" || strings.ToLower(*format) == "text" {
			// Suppressed when a machine-readable report streams to stdout.
			fmt.Fprintf(out, "wrote snapshot %s (%d rules)\n", *snapPath, snap.Len())
		}
	}

	if *outPath != "" {
		// Crash-safe: the document lands in a temp file that replaces
		// *outPath only after a full, fsynced write. A run killed mid-write
		// leaves any previous report untouched.
		if err := atomicio.WriteFile(*outPath, emit); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
		return nil
	}
	return emit(out)
}

// loadSubstitutes parses a substitute-group file: one group per line, item
// names whitespace-separated, '#' comments. Names must already exist in the
// taxonomy's dictionary.
func loadSubstitutes(path string, dict *negmine.Dictionary) ([]negmine.Itemset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var groups []negmine.Itemset
	for lineNo, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		items := make([]negmine.Item, len(fields))
		for i, f := range fields {
			id, ok := dict.Lookup(f)
			if !ok {
				return nil, fmt.Errorf("substitutes %s:%d: unknown item %q", path, lineNo+1, f)
			}
			items[i] = id
		}
		groups = append(groups, negmine.NewItemset(items...))
	}
	return groups, nil
}

const timeUnit = 1000 * 1000 // microseconds

func loadData(path string, dict *negmine.Dictionary) (negmine.DB, error) {
	if strings.HasSuffix(path, ".nmtx") {
		return negmine.OpenDB(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return negmine.ReadBaskets(f, dict)
}

func parseGenAlg(name string) (negmine.GenAlgorithm, error) {
	switch strings.ToLower(name) {
	case "basic":
		return negmine.Basic, nil
	case "cumulate":
		return negmine.Cumulate, nil
	case "estmerge":
		return negmine.EstMerge, nil
	default:
		return negmine.Basic, fmt.Errorf("unknown -gen %q (want basic, cumulate or estmerge)", name)
	}
}
