package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"negmine/internal/serve"
)

// TestSnapFlagWritesServableSnapshot: -snap must emit a .nsnap file that the
// serving layer loads via mmap with the same rules the run printed.
func TestSnapFlagWritesServableSnapshot(t *testing.T) {
	data, tax := writeFixtures(t)
	snapPath := filepath.Join(t.TempDir(), "rules.nsnap")
	var out bytes.Buffer
	err := run([]string{
		"-data", data, "-tax", tax,
		"-minsup", "0.15", "-minri", "0.3",
		"-snap", snapPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote snapshot "+snapPath) {
		t.Fatalf("missing snapshot confirmation:\n%s", out.String())
	}

	snap, err := serve.OpenSnapshotFile(snapPath, -1)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	if snap.Generation() != 1 || snap.SourceKind() != "mmap" {
		t.Fatalf("provenance = gen %d kind %q", snap.Generation(), snap.SourceKind())
	}
	if snap.Len() == 0 {
		t.Fatal("snapshot holds no rules")
	}
	// The headline fixture rule must be servable from the file.
	ids := snap.QueryItem(nil, "pepsi", 0, 0)
	found := false
	for _, id := range ids {
		e := snap.Entry(id)
		if len(e.Antecedent) == 1 && e.Antecedent[0] == "pepsi" &&
			len(e.Consequent) == 1 && e.Consequent[0] == "chips" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pepsi =/=> chips not served from the snapshot (got %d rules)", len(ids))
	}
	info := snap.Info()
	if info.MinSupport != 0.15 || info.MinRI != 0.3 || !strings.Contains(info.Source, "mined ") {
		t.Fatalf("snapshot meta = %+v", info)
	}
}

// TestSnapFlagKeepsJSONStdoutClean: with -format json streaming to stdout,
// the -snap confirmation must not corrupt the report document.
func TestSnapFlagKeepsJSONStdoutClean(t *testing.T) {
	data, tax := writeFixtures(t)
	snapPath := filepath.Join(t.TempDir(), "rules.nsnap")
	var out bytes.Buffer
	err := run([]string{
		"-data", data, "-tax", tax,
		"-minsup", "0.15", "-minri", "0.3",
		"-format", "json", "-snap", snapPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not clean JSON after -snap: %v\n%s", err, out.String())
	}
	if _, err := serve.OpenSnapshotFile(snapPath, -1); err != nil {
		t.Fatalf("snapshot alongside JSON report: %v", err)
	}
}
