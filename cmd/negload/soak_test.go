package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"negmine"
	"negmine/internal/datagen"
	"negmine/internal/loadsim"
)

// The workload soak runs the real negmined binary in streaming mode with a
// periodic re-mine, then drives it with the in-process simulator (the same
// code path the negload binary runs). Contract under sustained mixed load:
// zero hard 5xx, every tracer rule becomes visible, and — in the CI soak —
// freshness p99 stays within 2× the re-mine interval.

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// negminedBinary builds negmined once per test process.
func negminedBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "negload-bin-")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir, "negmine/cmd/negmined")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "negmined")
}

var addrRe = regexp.MustCompile(`on http://(\S+)`)

// startDaemon launches negmined, waits for its listen banner, and tees all
// output to the test log.
func startDaemon(t *testing.T, bin string, args ...string) (addr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting negmined: %v", err)
	}
	done := make(chan struct{})
	addrc := make(chan string, 1)
	go func() {
		defer close(done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[negmined] %s", line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		if cmd.ProcessState != nil {
			return
		}
		_ = cmd.Process.Signal(os.Interrupt)
		waited := make(chan struct{})
		go func() { _ = cmd.Wait(); close(waited) }()
		select {
		case <-waited:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-waited
		}
	})
	select {
	case addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatal("negmined did not print its listen address within 30s")
	}
	return addr
}

// workloadFixture generates the taxonomy and seed-transaction files. Seed
// baskets are scrubbed of the items tracer selection will reserve, so the
// planted supports are engineered from a clean slate.
func workloadFixture(t *testing.T, dir string, nTracers int) (taxPath, seedPath string) {
	t.Helper()
	p := datagen.Scaled(datagen.Short(), 50)
	p.NumTransactions = 600
	p.AvgTxLen = 6
	p.Seed = 5
	tax, db, err := datagen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dict := loadsim.DictFromTaxonomy(tax)
	tracers, err := loadsim.ChooseTracers(dict, nTracers)
	if err != nil {
		t.Fatalf("fixture taxonomy too small for %d tracers: %v", nTracers, err)
	}
	reserved := map[string]bool{}
	for _, tr := range tracers {
		reserved[tr.Antecedent], reserved[tr.Partner], reserved[tr.Consequent] = true, true, true
	}

	taxPath = filepath.Join(dir, "tax.txt")
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	var sb strings.Builder
	if err := db.Scan(func(tx negmine.Transaction) error {
		var names []string
		for _, x := range tx.Items {
			if n := tax.Name(x); !reserved[n] {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			sb.WriteString(strings.Join(names, " "))
			sb.WriteByte('\n')
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	seedPath = filepath.Join(dir, "seed.txt")
	if err := os.WriteFile(seedPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return taxPath, seedPath
}

func TestWorkloadSoak(t *testing.T) {
	soak := os.Getenv("NEGMINE_SOAK")
	if testing.Short() && soak == "" {
		t.Skip("multi-process workload soak skipped in -short (set NEGMINE_SOAK to force)")
	}

	duration, remine := 2*time.Second, 500*time.Millisecond
	if soak != "" {
		if d, err := time.ParseDuration(soak); err == nil && d > 0 {
			duration, remine = d, 2*time.Second
		}
	}

	dir := t.TempDir()
	taxPath, seedPath := workloadFixture(t, dir, 2)
	addr := startDaemon(t, negminedBinary(t),
		"-addr", "127.0.0.1:0", "-tax", taxPath, "-data", seedPath,
		"-ingest-dir", filepath.Join(dir, "log"),
		"-minsup", "0.05", "-minri", "0.5", "-maxk", "3",
		"-remine-every", remine.String())

	// Pre-seed the bench file with another section to prove the merge
	// preserves it.
	benchPath := filepath.Join(dir, "BENCH_serving.json")
	if err := os.WriteFile(benchPath, []byte(`{"description":"seeded","scale":50,"benches":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	args := []string{
		"-target", "http://" + addr, "-tax", taxPath,
		"-seed", "42", "-duration", duration.String(), "-rps", "100",
		"-mix-ingest", "0.1", "-mix-score", "0.45", "-mix-rules", "0.45",
		"-batch", "8", "-drift-phases", "4", "-drift-every", "100",
		"-burst-start", (duration / 4).String(), "-burst-len", (duration / 8).String(), "-burst-amp", "3",
		"-tracers", "2", "-minsup", "0.05", "-poll-every", "100ms",
		"-poll-timeout", (duration + 60*time.Second).String(),
		"-workloadbench", benchPath, "-label", "soak",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("negload: %v\n%s", err, out.String())
	}
	t.Logf("negload:\n%s", out.String())

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Description string          `json:"description"`
		Scale       int             `json:"scale"`
		Workload    struct {
			Runs []struct {
				Label string `json:"label"`
				loadsim.Result
			} `json:"runs"`
		} `json:"workload"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v\n%s", benchPath, err, raw)
	}
	if doc.Description != "seeded" || doc.Scale != 50 {
		t.Fatalf("merge clobbered existing sections: %s", raw)
	}
	if len(doc.Workload.Runs) != 1 || doc.Workload.Runs[0].Label != "soak" {
		t.Fatalf("workload section = %+v", doc.Workload)
	}
	res := doc.Workload.Runs[0].Result

	// Zero hard server errors across every endpoint; sheds/206s would be
	// acceptable under overload but 5xx never is.
	for _, ep := range res.Endpoints {
		if ep.Err5xx > 0 {
			t.Errorf("endpoint %s returned %d hard 5xx", ep.Endpoint, ep.Err5xx)
		}
		if ep.NetErr > 0 {
			t.Errorf("endpoint %s had %d transport errors", ep.Endpoint, ep.NetErr)
		}
		if ep.Sent > 0 && ep.P99Ms <= 0 {
			t.Errorf("endpoint %s missing latency quantiles: %+v", ep.Endpoint, ep)
		}
	}

	fr := res.Freshness
	if fr == nil || fr.Visible != fr.Tracers || fr.Missed != 0 {
		t.Fatalf("freshness = %+v, want all %d tracers visible", fr, 2)
	}
	if fr.P99Seconds <= 0 {
		t.Fatalf("freshness p99 = %v, want > 0", fr.P99Seconds)
	}
	// The freshness SLO: ingest → rule-visible p99 within 2× the re-mine
	// interval. Asserted in the CI soak, where the longer window smooths
	// scheduler noise.
	if soak != "" {
		if slo := 2 * remine.Seconds(); fr.P99Seconds > slo {
			t.Errorf("freshness p99 %.2fs exceeds SLO %.2fs (2x remine interval %s)", fr.P99Seconds, slo, remine)
		}
	}
	t.Logf("freshness: %d/%d visible, p50 %.2fs p99 %.2fs (remine %s)",
		fr.Visible, fr.Tracers, fr.P50Seconds, fr.P99Seconds, remine)
}
