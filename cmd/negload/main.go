// Command negload is the production workload simulator: it drives a live
// negmined (or negrouter) with a deterministic, seeded mix of /ingest,
// /score and /rules traffic — zipfian item popularity with seasonal drift
// and an optional flash-sale burst — while planting tracer itemsets to
// measure end-to-end rule freshness (ingest → rule visible in /rules).
//
//	negload -target http://127.0.0.1:8377 -tax tax.txt -duration 30s -rps 200 -tracers 2
//
// With -workloadbench the per-endpoint latency quantiles, error/shed rates
// and the freshness distribution merge into the workload section of
// BENCH_serving.json (other sections preserved).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"negmine/internal/bench"
	"negmine/internal/loadsim"
	"negmine/internal/taxonomy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "negload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("negload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		target  = fs.String("target", "http://127.0.0.1:8377", "base URL of the negmined or negrouter under test")
		taxPath = fs.String("tax", "", "taxonomy file defining the item dictionary (required)")
		seed    = fs.Int64("seed", 1, "workload seed; a fixed seed replays the identical request stream")

		duration = fs.Duration("duration", 10*time.Second, "scripted run length")
		rps      = fs.Float64("rps", 200, "offered request rate at amplitude 1")
		workers  = fs.Int("workers", 8, "executor pool size")
		queue    = fs.Int("queue", 0, "bounded op queue depth (0 = 2x workers)")

		mixIngest = fs.Float64("mix-ingest", 0.2, "ingest share of the request mix")
		mixScore  = fs.Float64("mix-score", 0.4, "score share of the request mix")
		mixRules  = fs.Float64("mix-rules", 0.4, "rules share of the request mix")

		basketMean  = fs.Float64("basket-mean", 4, "mean basket length (Poisson, >= 1)")
		batch       = fs.Int("batch", 16, "baskets per /ingest request")
		zipf        = fs.Float64("zipf", 1.0, "item popularity skew exponent (0 = uniform)")
		driftPhases = fs.Int("drift-phases", 4, "popularity rotation phases (<= 1 disables drift)")
		driftEvery  = fs.Int("drift-every", 0, "ops per drift phase (0 disables drift)")

		burstStart = fs.Duration("burst-start", 0, "flash-sale burst start (virtual time)")
		burstLen   = fs.Duration("burst-len", 0, "flash-sale burst length (0 disables)")
		burstAmp   = fs.Float64("burst-amp", 4, "burst rate multiplier")
		burstHot   = fs.Int("burst-hot", 4, "hot ranks burst draws concentrate on")

		tracers     = fs.Int("tracers", 0, "tracer itemsets to plant for freshness measurement")
		minsup      = fs.Float64("minsup", 0.02, "target's mining support threshold (sizes tracer plants)")
		seedTxns    = fs.Int("seed-txns", 0, "transactions already in the target's log (0 = read /metrics)")
		pollEvery   = fs.Duration("poll-every", 250*time.Millisecond, "/rules poll cadence for tracer visibility")
		pollTimeout = fs.Duration("poll-timeout", 0, "tracer visibility give-up (0 = duration+30s)")

		scoreLimit = fs.Int("score-limit", 0, "limit for /score responses (0 = server default)")

		benchPath = fs.String("workloadbench", "", "merge results into this BENCH_serving.json")
		label     = fs.String("label", "1x", "row label for the workload section (e.g. 1x, 4x)")
		jsonOut   = fs.Bool("json", false, "print the raw result as JSON instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *taxPath == "" {
		fs.Usage()
		return fmt.Errorf("-tax is required")
	}
	f, err := os.Open(*taxPath)
	if err != nil {
		return err
	}
	tax, err := taxonomy.Parse(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *taxPath, err)
	}
	dict := loadsim.DictFromTaxonomy(tax)

	if *pollTimeout <= 0 {
		*pollTimeout = *duration + 30*time.Second
	}
	cfg := loadsim.Config{
		Target: *target, Seed: *seed,
		Duration: *duration, RPS: *rps, Workers: *workers, QueueDepth: *queue,
		MixIngest: *mixIngest, MixScore: *mixScore, MixRules: *mixRules,
		BasketMean: *basketMean, IngestBatch: *batch, Zipf: *zipf,
		DriftEvery: *driftEvery, DriftPhases: *driftPhases,
		BurstStart: *burstStart, BurstLen: *burstLen, BurstAmp: *burstAmp, BurstHot: *burstHot,
		Tracers: *tracers, MinSupport: *minsup, SeedTxns: *seedTxns,
		PollEvery: *pollEvery, PollTimeout: *pollTimeout,
		ScoreLimit: *scoreLimit,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := loadsim.Run(ctx, cfg, dict)
	if err != nil {
		return err
	}

	rows := []*bench.WorkloadBench{{Label: *label, Result: res}}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows[0]); err != nil {
			return err
		}
	} else {
		bench.PrintWorkload(out, rows)
	}
	if *benchPath != "" {
		if err := bench.MergeWorkloadJSON(*benchPath, rows); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged workload run %q into %s\n", *label, *benchPath)
	}
	if fr := res.Freshness; fr != nil && fr.Missed > 0 {
		return fmt.Errorf("%d of %d tracer rules never became visible within %s", fr.Missed, fr.Tracers, cfg.PollTimeout)
	}
	return nil
}
