package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
)

func TestRunBinaryOutput(t *testing.T) {
	dir := t.TempDir()
	dataOut := filepath.Join(dir, "d.nmtx")
	taxOut := filepath.Join(dir, "t.txt")
	var out bytes.Buffer
	err := run([]string{
		"-preset", "short", "-scale", "100", "-seed", "5",
		"-items", "200", "-clusters", "20", "-roots", "5",
		"-out", dataOut, "-taxout", taxOut,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 500 transactions") {
		t.Errorf("unexpected output: %s", out.String())
	}
	db, err := negmine.LoadDB(dataOut)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != 500 {
		t.Errorf("binary db count = %d", db.Count())
	}
	f, err := os.Open(taxOut)
	if err != nil {
		t.Fatal(err)
	}
	tax, err := negmine.ParseTaxonomy(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tax.Leaves().Len() != 200 {
		t.Errorf("taxonomy leaves = %d", tax.Leaves().Len())
	}
}

func TestRunTextOutput(t *testing.T) {
	dir := t.TempDir()
	dataOut := filepath.Join(dir, "d.txt")
	taxOut := filepath.Join(dir, "t.txt")
	var out bytes.Buffer
	err := run([]string{
		"-preset", "tall", "-txs", "50", "-items", "100", "-clusters", "10", "-roots", "4",
		"-out", dataOut, "-taxout", taxOut,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dataOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(raw), "\n")
	if lines != 50 {
		t.Errorf("text output has %d lines, want 50", lines)
	}
	if !strings.Contains(string(raw), "item") {
		t.Error("text output does not contain item names")
	}
	// Round trip: the taxonomy dictionary must resolve every basket item.
	f, _ := os.Open(taxOut)
	tax, err := negmine.ParseTaxonomy(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range strings.Fields(string(raw)) {
		if _, ok := tax.Dictionary().Lookup(tok); !ok {
			t.Fatalf("basket item %q not in taxonomy", tok)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "bogus"}, &out); err == nil {
		t.Error("bogus preset accepted")
	}
	if err := run([]string{"-preset", "short", "-items", "1"}, &out); err == nil {
		t.Error("invalid parameter accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.nmtx", "-txs", "10", "-items", "60", "-clusters", "5", "-roots", "3"}, &out); err == nil {
		t.Error("unwritable output accepted")
	}
}
