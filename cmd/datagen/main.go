// Command datagen generates the paper's synthetic retail datasets (§3.1):
// a taxonomy file and a transaction file, either in the basket text format
// or the library's binary format.
//
// Usage:
//
//	datagen -preset short -scale 10 -out data.nmtx -taxout tax.txt
//	datagen -items 1000 -txs 20000 -fanout 5 -roots 20 -out data.txt
//	datagen -drift -zipf 1.0 -drift-phases 4 -out drift.nmtx
//
// With -scale N only the transaction count is divided by N; the item
// universe keeps the paper's proportions, preserving relative supports.
//
// With -drift the stationary cluster model is replaced by a drifting
// zipfian stream: basket items are drawn by popularity rank with skew
// -zipf, and the rank→item assignment rotates through -drift-phases
// phases (every -drift-every transactions) — the non-stationary regime
// the incremental miner and freshness benches exercise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"negmine"
	"negmine/internal/datagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		preset  = fs.String("preset", "short", "parameter preset: short or tall")
		scale   = fs.Int("scale", 1, "divide the transaction count by this factor")
		seed    = fs.Int64("seed", 1, "random seed")
		outPath = fs.String("out", "data.nmtx", "transaction output (.nmtx binary, otherwise basket text)")
		taxOut  = fs.String("taxout", "taxonomy.txt", "taxonomy output file")
		txs     = fs.Int("txs", 0, "override: number of transactions")
		items   = fs.Int("items", 0, "override: number of leaf items")
		roots   = fs.Int("roots", 0, "override: taxonomy roots")
		fanout  = fs.Float64("fanout", 0, "override: taxonomy fanout")
		txLen   = fs.Float64("txlen", 0, "override: average transaction length")
		cluster = fs.Int("clusters", 0, "override: number of potentially large clusters")

		drift      = fs.Bool("drift", false, "drifting zipfian stream instead of the stationary cluster model")
		zipf       = fs.Float64("zipf", 1.0, "with -drift: zipf skew exponent over items (0 = uniform)")
		driftPh    = fs.Int("drift-phases", 4, "with -drift: popularity phases before the rotation repeats")
		driftEvery = fs.Int("drift-every", 0, "with -drift: transactions per phase (0 = txs/phases)")
		driftShift = fs.Int("drift-shift", 0, "with -drift: rank rotation per phase (0 = items/phases)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p negmine.DataParams
	switch strings.ToLower(*preset) {
	case "short":
		p = negmine.ShortDataParams()
	case "tall":
		p = negmine.TallDataParams()
	default:
		return fmt.Errorf("unknown -preset %q (want short or tall)", *preset)
	}
	if *scale > 1 {
		p.NumTransactions /= *scale
		if p.NumTransactions < 100 {
			p.NumTransactions = 100
		}
	}
	p.Seed = *seed
	if *txs > 0 {
		p.NumTransactions = *txs
	}
	if *items > 0 {
		p.NumItems = *items
	}
	if *roots > 0 {
		p.Roots = *roots
	}
	if *fanout > 0 {
		p.Fanout = *fanout
	}
	if *txLen > 0 {
		p.AvgTxLen = *txLen
	}
	if *cluster > 0 {
		p.NumClusters = *cluster
	}

	var (
		tax *negmine.Taxonomy
		db  *negmine.MemDB
		err error
	)
	if *drift {
		tax, db, err = datagen.GenerateDrift(p, datagen.DriftParams{
			Exponent:       *zipf,
			Phases:         *driftPh,
			EventsPerPhase: *driftEvery,
			Shift:          *driftShift,
		})
	} else {
		tax, db, err = negmine.GenerateData(p)
	}
	if err != nil {
		return err
	}

	tf, err := os.Create(*taxOut)
	if err != nil {
		return err
	}
	if err := tax.Write(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}

	if strings.HasSuffix(*outPath, ".nmtx") {
		err = negmine.SaveDB(*outPath, db)
	} else {
		var f *os.File
		f, err = os.Create(*outPath)
		if err == nil {
			err = writeBaskets(f, db, tax)
		}
	}
	if err != nil {
		return err
	}

	stats, err := negmine.CollectStats(db)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d transactions (avg length %.2f) to %s\n", stats.Transactions, stats.AvgLen, *outPath)
	fmt.Fprintf(out, "wrote taxonomy (%d nodes, %d leaves, height %d, mean fanout %.2f) to %s\n",
		tax.Size(), tax.Leaves().Len(), tax.Height(), tax.MeanFanout(), *taxOut)
	return nil
}

func writeBaskets(f *os.File, db negmine.DB, tax *negmine.Taxonomy) error {
	err := db.Scan(func(tx negmine.Transaction) error {
		for i, it := range tx.Items {
			if i > 0 {
				if _, err := f.WriteString(" "); err != nil {
					return err
				}
			}
			if _, err := f.WriteString(tax.Name(it)); err != nil {
				return err
			}
		}
		_, err := f.WriteString("\n")
		return err
	})
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
