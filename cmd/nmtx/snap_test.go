package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
	"negmine/internal/report"
	"negmine/internal/serve"
)

// writeSnap builds a snapshot from a hand-written report and writes it as a
// .nsnap file, returning its path.
func writeSnap(t *testing.T, dir, name string, gen uint64, rules []report.NegativeRuleRecord) string {
	t.Helper()
	tax, err := negmine.ParseTaxonomy(strings.NewReader("drinks beer\ndrinks soda\nfood chips\n"))
	if err != nil {
		t.Fatal(err)
	}
	rep := &report.NegativeReport{MinSupport: 0.02, MinRI: 0.5, Rules: rules}
	snap := serve.BuildSnapshot(negmine.RuleStoreFromReport(rep), tax,
		serve.Meta{Source: "test fixture", MinSupport: 0.02, MinRI: 0.5})
	path := filepath.Join(dir, name)
	if err := serve.WriteSnapshotFile(path, snap, gen); err != nil {
		t.Fatal(err)
	}
	return path
}

func rule(ante, cons string, ri float64) report.NegativeRuleRecord {
	return report.NegativeRuleRecord{
		Antecedent: []string{ante}, Consequent: []string{cons},
		RuleInterest: ri, ExpectedSupport: 0.1, ActualSupport: 0.01,
	}
}

func TestSnapInfo(t *testing.T) {
	path := writeSnap(t, t.TempDir(), "a.nsnap", 7, []report.NegativeRuleRecord{
		rule("beer", "chips", 1.5),
		rule("soda", "chips", 0.8),
	})
	var out bytes.Buffer
	if err := run([]string{"snap", "info", path}, &out); err != nil {
		t.Fatalf("snap info: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"generation: 7",
		"rules:      2",
		"thresholds: minsup 0.02, minri 0.5",
		"sections:",
		"meta", "ri", "name-blob", "reach-words",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snap info output missing %q:\n%s", want, s)
		}
	}
}

func TestSnapVerify(t *testing.T) {
	dir := t.TempDir()
	path := writeSnap(t, dir, "a.nsnap", 1, []report.NegativeRuleRecord{rule("beer", "chips", 1.5)})
	var out bytes.Buffer
	if err := run([]string{"snap", "verify", path}, &out); err != nil {
		t.Fatalf("snap verify on a good file: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("verify output:\n%s", out.String())
	}

	// Flip one payload byte: verify must report the bad section and fail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10
	bad := filepath.Join(dir, "bad.nsnap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"snap", "verify", bad}, &out); err == nil {
		t.Fatalf("snap verify accepted a corrupt file:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("verify did not flag the bad section:\n%s", out.String())
	}
}

func TestSnapDiff(t *testing.T) {
	dir := t.TempDir()
	old := writeSnap(t, dir, "old.nsnap", 1, []report.NegativeRuleRecord{
		rule("beer", "chips", 1.5),
		rule("soda", "chips", 0.8),
		rule("drinks", "food", 0.6),
	})
	new_ := writeSnap(t, dir, "new.nsnap", 2, []report.NegativeRuleRecord{
		rule("beer", "chips", 1.5), // unchanged
		rule("soda", "chips", 0.9), // RI changed
		rule("beer", "soda", 0.7),  // added
		// drinks =/=> food removed
	})
	var out bytes.Buffer
	if err := run([]string{"snap", "diff", old, new_}, &out); err != nil {
		t.Fatalf("snap diff: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"added 1, removed 1, changed 1",
		"+ beer =/=> soda  RI 0.7",
		"- drinks =/=> food  RI 0.6",
		"~ soda =/=> chips  RI 0.8 -> 0.9",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diff output missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := run([]string{"snap", "diff", old, old}, &out); err != nil {
		t.Fatalf("self diff: %v", err)
	}
	if !strings.Contains(out.String(), "identical rule sets") {
		t.Fatalf("self diff output:\n%s", out.String())
	}
}

func TestSnapUsage(t *testing.T) {
	for _, args := range [][]string{
		{"snap"},
		{"snap", "bogus"},
		{"snap", "info"},
		{"snap", "diff", "only-one.nsnap"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
