package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"negmine/internal/cluster"
)

// runCluster implements the `nmtx cluster` subcommand family:
//
//	nmtx cluster status -router URL   shard health, generations, breakers
//	nmtx cluster promote -node URL    manually promote a standby negmined
func runCluster(args []string, out io.Writer) error {
	usage := func(format string, a ...any) error {
		fmt.Fprintln(out, `usage:
  nmtx cluster status -router URL   shard/replica health table from a negrouter
  nmtx cluster promote -node URL    promote a standby negmined to ingest primary`)
		return fmt.Errorf(format, a...)
	}
	if len(args) == 0 {
		return usage("cluster: missing subcommand")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "status":
		fs := flag.NewFlagSet("nmtx cluster status", flag.ContinueOnError)
		fs.SetOutput(out)
		router := fs.String("router", "http://127.0.0.1:8378", "negrouter base URL")
		timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return usage("cluster status: unexpected arguments %v", fs.Args())
		}
		return clusterStatus(out, strings.TrimRight(*router, "/"), *timeout)
	case "promote":
		fs := flag.NewFlagSet("nmtx cluster promote", flag.ContinueOnError)
		fs.SetOutput(out)
		node := fs.String("node", "", "standby negmined base URL (e.g. http://127.0.0.1:8380)")
		timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return usage("cluster promote: unexpected arguments %v", fs.Args())
		}
		if *node == "" || !strings.HasPrefix(*node, "http") {
			return usage("cluster promote: -node must be the standby's http(s) URL")
		}
		return clusterPromote(out, strings.TrimRight(*node, "/"), *timeout)
	default:
		return usage("cluster: unknown subcommand %q", verb)
	}
}

// clusterPromote triggers a manual failover: POST /ha/promote on the
// standby. The daemon bumps the fencing epoch, publishes it in the shared
// seglog store (fencing the old primary), and starts accepting writes.
func clusterPromote(out io.Writer, node string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Post(node+"/ha/promote", "application/json", nil)
	if err != nil {
		return fmt.Errorf("promoting %s: %w", node, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	var doc struct {
		Status string `json:"status"`
		Epoch  int64  `json:"epoch"`
		Error  string `json:"error"`
	}
	_ = json.Unmarshal(raw, &doc)
	if resp.StatusCode != http.StatusOK {
		msg := doc.Error
		if msg == "" {
			msg = strings.TrimSpace(string(raw))
		}
		return fmt.Errorf("%s/ha/promote: HTTP %d: %s", node, resp.StatusCode, msg)
	}
	switch doc.Status {
	case "promoted":
		fmt.Fprintf(out, "%s promoted to ingest primary at epoch %d\n", node, doc.Epoch)
	case "already-primary":
		fmt.Fprintf(out, "%s is already the ingest primary (epoch %d)\n", node, doc.Epoch)
	default:
		fmt.Fprintf(out, "%s: %s\n", node, strings.TrimSpace(string(raw)))
	}
	return nil
}

// clusterStatus fetches and renders the router's shard/replica table.
func clusterStatus(out io.Writer, router string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(router + "/cluster/status")
	if err != nil {
		return fmt.Errorf("querying %s: %w", router, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/cluster/status: HTTP %d: %s", router, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var st cluster.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("parsing cluster status: %w", err)
	}

	health := "ok"
	if st.Routable < st.Shards {
		health = "DEGRADED"
	}
	fmt.Fprintf(out, "router:  %s (%s)\n", router, health)
	fmt.Fprintf(out, "shards:  %d (%d routable), %d replicas, %d heartbeats",
		st.Shards, st.Routable, st.Registered, st.Heartbeats)
	if st.HeartbeatErrs > 0 {
		fmt.Fprintf(out, " (%d rejected)", st.HeartbeatErrs)
	}
	fmt.Fprintln(out)
	for _, shard := range st.Table {
		route := "routable"
		if !shard.Routable {
			route = "NOT ROUTABLE"
		}
		fmt.Fprintf(out, "shard %d  %s\n", shard.Shard, route)
		if len(shard.Replicas) == 0 {
			fmt.Fprintf(out, "  (no registered replicas)\n")
			continue
		}
		for _, r := range shard.Replicas {
			fmt.Fprintf(out, "  %-20s %-22s %-10s gen %-5d age %6.1fs  fresh %6.1fs  rules %d",
				r.Node, r.Addr, r.State, r.Generation, r.AgeSeconds, r.FreshnessSeconds, r.Rules)
			if r.SourceKind != "" {
				fmt.Fprintf(out, "  via %s", r.SourceKind)
			}
			if r.IngestRole != "" {
				fmt.Fprintf(out, "  ingest %s", r.IngestRole)
				if r.ReplLagSegments > 0 {
					fmt.Fprintf(out, " (lag %d segs)", r.ReplLagSegments)
				}
			}
			if r.Degraded {
				fmt.Fprintf(out, "  load-degraded")
			}
			if r.BreakerOpen {
				fmt.Fprintf(out, "  breaker OPEN")
			}
			if r.BreakerOpens > 0 {
				fmt.Fprintf(out, "  (%d breaker opens)", r.BreakerOpens)
			}
			if r.Failures > 0 {
				fmt.Fprintf(out, "  %d/%d failed", r.Failures, r.Requests)
			}
			fmt.Fprintln(out)
		}
	}
	if st.Routable < st.Shards {
		return fmt.Errorf("cluster degraded: %d of %d shards routable", st.Routable, st.Shards)
	}
	return nil
}
