package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"negmine/internal/cluster"
)

// fakeRouter serves a canned /cluster/status document.
func fakeRouter(t *testing.T, st cluster.Status) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/status" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestClusterStatusHealthy(t *testing.T) {
	srv := fakeRouter(t, cluster.Status{
		Shards: 2, Routable: 2, Registered: 3, Heartbeats: 42,
		Table: []cluster.ShardStatus{
			{Shard: 0, Routable: true, Replicas: []cluster.ReplicaStatus{
				{Node: "n0", Addr: "127.0.0.1:9000", State: "healthy", Generation: 7,
					AgeSeconds: 1.5, FreshnessSeconds: 2.5, Rules: 120, SourceKind: "mmap"},
			}},
			{Shard: 1, Routable: true, Replicas: []cluster.ReplicaStatus{
				{Node: "n1", Addr: "127.0.0.1:9001", State: "healthy", Generation: 7, Rules: 115},
				{Node: "n1b", Addr: "127.0.0.1:9002", State: "suspect", Generation: 6, Rules: 115,
					BreakerOpen: true, BreakerOpens: 2, Failures: 4, Requests: 100},
			}},
		},
	})

	var out strings.Builder
	if err := run([]string{"cluster", "status", "-router", srv.URL}, &out); err != nil {
		t.Fatalf("cluster status: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"(ok)", "2 (2 routable), 3 replicas, 42 heartbeats",
		"shard 0  routable", "n0", "gen 7", "fresh    2.5s", "via mmap",
		"shard 1  routable", "n1b", "suspect", "breaker OPEN", "(2 breaker opens)", "4/100 failed",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("status output missing %q:\n%s", want, text)
		}
	}
}

func TestClusterStatusDegradedIsAnError(t *testing.T) {
	srv := fakeRouter(t, cluster.Status{
		Shards: 3, Routable: 2, Registered: 2,
		Table: []cluster.ShardStatus{
			{Shard: 0, Routable: true, Replicas: []cluster.ReplicaStatus{{Node: "n0", State: "healthy"}}},
			{Shard: 1, Routable: true, Replicas: []cluster.ReplicaStatus{{Node: "n1", State: "healthy"}}},
			{Shard: 2},
		},
	})

	var out strings.Builder
	err := run([]string{"cluster", "status", "-router", srv.URL}, &out)
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("degraded cluster err = %v", err)
	}
	text := out.String()
	for _, want := range []string{"(DEGRADED)", "shard 2  NOT ROUTABLE", "(no registered replicas)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("degraded output missing %q:\n%s", want, text)
		}
	}
}

func TestClusterUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"cluster"}, &out); err == nil {
		t.Fatal("bare cluster accepted")
	}
	if err := run([]string{"cluster", "bogus"}, &out); err == nil {
		t.Fatal("unknown cluster verb accepted")
	}
	if err := run([]string{"cluster", "status", "extra"}, &out); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"cluster", "status", "-router", "http://127.0.0.1:1", "-timeout", "50ms"}, &out); err == nil {
		t.Fatal("unreachable router reported success")
	}
}
