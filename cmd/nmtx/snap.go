package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"negmine/internal/snapfmt"
)

// runSnap implements the `nmtx snap` subcommand family over .nsnap snapshot
// files (the binary format cmd/negmined serves from and `negmine -snap`
// writes):
//
//	nmtx snap info FILE.nsnap           header, provenance and section table
//	nmtx snap verify FILE.nsnap         per-section checksum + structural check
//	nmtx snap diff OLD.nsnap NEW.nsnap  rule-set delta between two snapshots
func runSnap(args []string, out io.Writer) error {
	usage := func(format string, a ...any) error {
		fmt.Fprintln(out, `usage:
  nmtx snap info FILE.nsnap           header, provenance and section table
  nmtx snap verify FILE.nsnap         per-section checksum + structural check
  nmtx snap diff OLD.nsnap NEW.nsnap  rule-set delta between two snapshots`)
		return fmt.Errorf(format, a...)
	}
	if len(args) == 0 {
		return usage("snap: missing subcommand")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "info":
		if len(rest) != 1 {
			return usage("snap info: want exactly one file")
		}
		return snapInfo(out, rest[0])
	case "verify":
		if len(rest) != 1 {
			return usage("snap verify: want exactly one file")
		}
		return snapVerify(out, rest[0])
	case "diff":
		if len(rest) != 2 {
			return usage("snap diff: want exactly two files")
		}
		return snapDiff(out, rest[0], rest[1])
	default:
		return usage("snap: unknown subcommand %q", verb)
	}
}

// snapInfo prints the header, meta provenance and section table of a valid
// snapshot file.
func snapInfo(out io.Writer, path string) error {
	f, err := snapfmt.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	img := f.Image
	h := img.Header
	fmt.Fprintf(out, "file:       %s (%d bytes)\n", path, f.Size())
	fmt.Fprintf(out, "version:    %d\n", h.Version)
	fmt.Fprintf(out, "generation: %d\n", h.Generation)
	fmt.Fprintf(out, "created:    %s\n", h.Created().UTC().Format("2006-01-02T15:04:05Z"))
	if img.Meta.Tool != "" || img.Meta.Source != "" {
		fmt.Fprintf(out, "written by: %s (%s)\n", img.Meta.Tool, img.Meta.Source)
	}
	fmt.Fprintf(out, "thresholds: minsup %g, minri %g\n", img.Meta.MinSupport, img.Meta.MinRI)
	lo, hi := img.RIRange()
	fmt.Fprintf(out, "rules:      %d (RI %.4g .. %.4g)\n", img.NumRules(), lo, hi)
	fmt.Fprintf(out, "items:      %d\n", img.NumItems())

	// The section table comes from the raw header, not the decoded image.
	_, table, err := snapfmt.DecodeHeader(f.Bytes())
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "sections:")
	for _, e := range table {
		fmt.Fprintf(out, "  %-11s off %8d  len %8d  crc %08x\n", e.Kind.Name(), e.Offset, e.Length, e.CRC)
	}
	return nil
}

// snapVerify checks every section checksum plus the structural invariants,
// reporting per-section status. A bad file is an error (exit 1) after the
// report prints.
func snapVerify(out io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := snapfmt.Check(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(out, "%s: generation %d, %d sections\n", path, rep.Header.Generation, len(rep.Sections))
	for _, s := range rep.Sections {
		if s.OK {
			fmt.Fprintf(out, "  %-11s ok   (%d bytes)\n", s.Kind.Name(), s.Length)
		} else {
			fmt.Fprintf(out, "  %-11s FAIL %s\n", s.Kind.Name(), s.Err)
		}
	}
	if rep.Structural != "" {
		fmt.Fprintf(out, "  structural  FAIL %s\n", rep.Structural)
	}
	if !rep.OK {
		return fmt.Errorf("%s: snapshot verification failed", path)
	}
	fmt.Fprintln(out, "ok")
	return nil
}

// snapDiff compares two snapshots' rule sets by (antecedent, consequent)
// key and prints added/removed/changed rules plus the count and RI-range
// deltas.
func snapDiff(out io.Writer, oldPath, newPath string) error {
	of, err := snapfmt.Open(oldPath)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	defer of.Close()
	nf, err := snapfmt.Open(newPath)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	defer nf.Close()

	summarize := func(label, path string, img *snapfmt.Image) {
		lo, hi := img.RIRange()
		fmt.Fprintf(out, "%s %s: generation %d, %d rules (RI %.4g .. %.4g)\n",
			label, path, img.Header.Generation, img.NumRules(), lo, hi)
	}
	summarize("old", oldPath, of.Image)
	summarize("new", newPath, nf.Image)

	oldRules := ruleMap(of.Image)
	newRules := ruleMap(nf.Image)
	var added, removed, changed []string
	for k, ri := range newRules {
		old, ok := oldRules[k]
		switch {
		case !ok:
			added = append(added, fmt.Sprintf("  + %s  RI %.4g", k, ri))
		case old != ri:
			changed = append(changed, fmt.Sprintf("  ~ %s  RI %.4g -> %.4g", k, old, ri))
		}
	}
	for k, ri := range oldRules {
		if _, ok := newRules[k]; !ok {
			removed = append(removed, fmt.Sprintf("  - %s  RI %.4g", k, ri))
		}
	}
	if len(added)+len(removed)+len(changed) == 0 {
		fmt.Fprintln(out, "identical rule sets")
		return nil
	}
	fmt.Fprintf(out, "added %d, removed %d, changed %d\n", len(added), len(removed), len(changed))
	for _, group := range [][]string{added, removed, changed} {
		sort.Strings(group)
		for _, line := range group {
			fmt.Fprintln(out, line)
		}
	}
	return nil
}

// ruleMap keys every rule by its formatted sides, mapping to its RI.
func ruleMap(img *snapfmt.Image) map[string]float64 {
	rules := make(map[string]float64, img.NumRules())
	for i := 0; i < img.NumRules(); i++ {
		ante, cons := img.RuleSides(i)
		rules[sideKey(img, ante)+" =/=> "+sideKey(img, cons)] = img.RI[i]
	}
	return rules
}

func sideKey(img *snapfmt.Image, ids []int32) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = img.Name(int(id))
	}
	return strings.Join(names, ",")
}
