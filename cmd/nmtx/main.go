// Command nmtx inspects and converts transaction files in the library's
// binary format (plain or gzipped).
//
//	nmtx -stats data.nmtx              # header + basket statistics
//	nmtx -head 5 data.nmtx             # first baskets as integer ids
//	nmtx -convert out.txt data.nmtx    # binary → integer basket text
//	nmtx -pack out.nmtx.gz data.txt    # basket text → (gzipped) binary
//
// With -log DIR the tool operates on a streaming segment log (the negmined
// -ingest-dir format) instead of a single file:
//
//	nmtx -log dir -info                # manifest + per-segment summary
//	nmtx -log dir -append data.nmtx    # append a file's transactions
//	nmtx -log dir -seal                # seal the active segment
//	nmtx -log dir -compact             # merge small adjacent segments
//
// The snap subcommand inspects binary rule snapshots (.nsnap, written by
// `negmine -snap` or a negmined -snapshot-dir store):
//
//	nmtx snap info file.nsnap          # header, provenance, section table
//	nmtx snap verify file.nsnap        # checksum + structural verification
//	nmtx snap diff old.nsnap new.nsnap # rule-set delta
//
// The cluster subcommand talks to a running negrouter:
//
//	nmtx cluster status -router URL    # shard health, generations, breakers
//
// Packed .nmtx files are the -data input of the mining pipeline: `negmine
// -data out.nmtx -format json` writes the report JSON that the cmd/negmined
// daemon serves (`negmined -report rules.json`, or `negmined -data out.nmtx`
// to mine and serve directly).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"negmine"
	"negmine/internal/item"
	"negmine/internal/seglog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nmtx:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// `nmtx snap ...` and `nmtx cluster ...` are subcommand families with
	// their own argument shapes; dispatch before flag parsing.
	if len(args) > 0 && args[0] == "snap" {
		return runSnap(args[1:], out)
	}
	if len(args) > 0 && args[0] == "cluster" {
		return runCluster(args[1:], out)
	}
	fs := flag.NewFlagSet("nmtx", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		stats   = fs.Bool("stats", false, "print header and basket statistics")
		head    = fs.Int("head", 0, "print the first N baskets")
		convert = fs.String("convert", "", "write the file as integer basket text to this path")
		pack    = fs.String("pack", "", "write the (text) input as binary to this path (.gz for gzip)")

		logDir  = fs.String("log", "", "operate on this segment-log directory (negmined -ingest-dir format)")
		appendF = fs.String("append", "", "append this file's transactions to the -log")
		seal    = fs.Bool("seal", false, "seal the -log's active segment")
		compact = fs.Bool("compact", false, "merge small adjacent sealed segments in the -log")
		info    = fs.Bool("info", false, "print the -log's manifest and per-segment summary")
	)
	defaultUsage := fs.Usage
	fs.Usage = func() {
		defaultUsage()
		fmt.Fprintln(fs.Output(), `
Packed .nmtx files feed the mining pipeline: "negmine -data FILE.nmtx -format json"
writes the report JSON that the negmined daemon serves ("negmined -report rules.json"),
and "negmined -data FILE.nmtx" mines and serves it directly.`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logDir != "" {
		if fs.NArg() != 0 {
			fs.Usage()
			return fmt.Errorf("-log mode takes no positional arguments")
		}
		return runLog(out, *logDir, *appendF, *seal, *compact, *info)
	}
	if *appendF != "" || *seal || *compact || *info {
		fs.Usage()
		return fmt.Errorf("-append/-seal/-compact/-info require -log")
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one input file required")
	}
	path := fs.Arg(0)

	db, err := open(path)
	if err != nil {
		return err
	}

	did := false
	if *stats {
		did = true
		if err := printStats(out, path, db); err != nil {
			return err
		}
	}
	if *head > 0 {
		did = true
		n := 0
		err := db.Scan(func(tx negmine.Transaction) error {
			if n >= *head {
				return errEnough
			}
			n++
			ids := make([]string, tx.Items.Len())
			for i, x := range tx.Items {
				ids[i] = fmt.Sprint(x)
			}
			fmt.Fprintf(out, "%d: %s\n", tx.TID, strings.Join(ids, " "))
			return nil
		})
		if err != nil && err != errEnough {
			return err
		}
	}
	if *convert != "" {
		did = true
		f, err := os.Create(*convert)
		if err != nil {
			return err
		}
		if err := writeInts(f, db); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote basket text to %s\n", *convert)
	}
	if *pack != "" {
		did = true
		if err := negmine.SaveDB(*pack, db); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote binary to %s\n", *pack)
	}
	if !did {
		return printStats(out, path, db) // default action
	}
	return nil
}

var errEnough = fmt.Errorf("enough")

// runLog is the -log mode: inspect and maintain a streaming segment log.
// Actions compose left to right (append, then seal, then compact); with no
// action, or with -info, the manifest summary is printed.
func runLog(out io.Writer, dir, appendF string, seal, compact, info bool) error {
	log, err := seglog.Open(dir, seglog.Options{})
	if err != nil {
		return err
	}
	defer log.Close()

	did := false
	if appendF != "" {
		did = true
		db, err := open(appendF)
		if err != nil {
			return err
		}
		const batch = 4096
		buf := make([]item.Itemset, 0, batch)
		var first, last int64
		var total int
		flush := func() error {
			if len(buf) == 0 {
				return nil
			}
			lo, hi, err := log.Append(buf)
			if err != nil {
				return err
			}
			if total == 0 {
				first = lo
			}
			last = hi
			total += len(buf)
			buf = buf[:0]
			return nil
		}
		err = db.Scan(func(tx negmine.Transaction) error {
			buf = append(buf, tx.Items.Clone())
			if len(buf) == batch {
				return flush()
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
		if total == 0 {
			fmt.Fprintf(out, "%s: no transactions to append\n", appendF)
		} else {
			fmt.Fprintf(out, "appended %d transactions (TIDs %d..%d)\n", total, first, last)
		}
	}
	if seal {
		did = true
		if err := log.Seal(); err != nil {
			return err
		}
		fmt.Fprintln(out, "sealed active segment")
	}
	if compact {
		did = true
		merged, err := log.Compact()
		if err != nil {
			return err
		}
		if merged {
			fmt.Fprintln(out, "compacted a run of small segments")
		} else {
			fmt.Fprintln(out, "nothing to compact")
		}
	}
	if info || !did {
		printLogInfo(out, dir, log)
	}
	return nil
}

func printLogInfo(out io.Writer, dir string, log *seglog.Log) {
	st := log.Stats()
	fmt.Fprintf(out, "%s:\n", dir)
	fmt.Fprintf(out, "  sealed segments: %d (%d transactions, %d bytes)\n",
		st.Segments, st.SealedTxns, st.SealedBytes)
	fmt.Fprintf(out, "  active segment:  %d transactions (%d bytes)\n",
		st.ActiveTxns, st.ActiveBytes)
	fmt.Fprintf(out, "  next TID:        %d\n", st.NextTID)
	if st.RecoveredDrop > 0 {
		fmt.Fprintf(out, "  torn bytes dropped at recovery: %d\n", st.RecoveredDrop)
	}
	for _, v := range log.SealedViews() {
		e := v.Entry
		fmt.Fprintf(out, "  seg-%08d: %6d txns, %8d bytes, TIDs %d..%d, crc %08x\n",
			e.ID, e.Txns, e.Bytes, e.MinTID, e.MaxTID, e.CRC)
	}
}

// open loads path as binary (.nmtx/.nmtx.gz) or integer basket text.
func open(path string) (negmine.DB, error) {
	if strings.HasSuffix(path, ".nmtx") || strings.HasSuffix(path, ".nmtx.gz") {
		return negmine.OpenDB(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return negmine.ReadBasketsInts(f)
}

func printStats(out io.Writer, path string, db negmine.DB) error {
	st, err := negmine.CollectStats(db)
	if err != nil {
		return err
	}
	// Basket length histogram.
	hist := map[int]int{}
	if err := db.Scan(func(tx negmine.Transaction) error {
		hist[tx.Items.Len()]++
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s:\n", path)
	fmt.Fprintf(out, "  transactions: %d\n", st.Transactions)
	fmt.Fprintf(out, "  total items:  %d\n", st.TotalItems)
	fmt.Fprintf(out, "  avg length:   %.2f\n", st.AvgLen)
	fmt.Fprintf(out, "  max item id:  %d\n", st.MaxItem)
	lengths := make([]int, 0, len(hist))
	for l := range hist {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	fmt.Fprintln(out, "  length histogram:")
	for _, l := range lengths {
		fmt.Fprintf(out, "    %3d: %d\n", l, hist[l])
	}
	return nil
}

func writeInts(w io.Writer, db negmine.DB) error {
	err := db.Scan(func(tx negmine.Transaction) error {
		for i, x := range tx.Items {
			if i > 0 {
				if _, err := fmt.Fprint(w, " "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(w, int(x)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	})
	return err
}
