package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
)

func fixture(t *testing.T) string {
	t.Helper()
	db := negmine.FromItemsets(
		[]negmine.Item{1, 2, 3},
		[]negmine.Item{2, 4},
		[]negmine.Item{1},
	)
	path := filepath.Join(t.TempDir(), "f.nmtx")
	if err := negmine.SaveDB(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStatsDefault(t *testing.T) {
	path := fixture(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"transactions: 3", "avg length:   2.00", "max item id:  4", "length histogram"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats missing %q:\n%s", want, s)
		}
	}
}

func TestHead(t *testing.T) {
	path := fixture(t)
	var out bytes.Buffer
	if err := run([]string{"-head", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || lines[0] != "1: 1 2 3" || lines[1] != "2: 2 4" {
		t.Errorf("head output:\n%s", out.String())
	}
}

func TestConvertAndPackRoundTrip(t *testing.T) {
	path := fixture(t)
	dir := t.TempDir()
	txt := filepath.Join(dir, "out.txt")
	var out bytes.Buffer
	if err := run([]string{"-convert", txt, path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "1 2 3\n2 4\n1\n" {
		t.Errorf("converted text = %q", raw)
	}
	// Pack text back to gzipped binary and compare stats.
	gz := filepath.Join(dir, "out.nmtx.gz")
	out.Reset()
	if err := run([]string{"-pack", gz, txt}, &out); err != nil {
		t.Fatal(err)
	}
	db, err := negmine.OpenDB(gz)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != 3 {
		t.Errorf("packed count = %d", db.Count())
	}
}

// TestUsageMentionsPipeline pins that -h points at the negmine/negmined
// consumers of packed .nmtx files.
func TestUsageMentionsPipeline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	for _, want := range []string{"negmine -data", "negmined"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("usage missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Error("two inputs accepted")
	}
	if err := run([]string{"/does/not/exist.nmtx"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
