package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
)

func fixture(t *testing.T) string {
	t.Helper()
	db := negmine.FromItemsets(
		[]negmine.Item{1, 2, 3},
		[]negmine.Item{2, 4},
		[]negmine.Item{1},
	)
	path := filepath.Join(t.TempDir(), "f.nmtx")
	if err := negmine.SaveDB(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStatsDefault(t *testing.T) {
	path := fixture(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"transactions: 3", "avg length:   2.00", "max item id:  4", "length histogram"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats missing %q:\n%s", want, s)
		}
	}
}

func TestHead(t *testing.T) {
	path := fixture(t)
	var out bytes.Buffer
	if err := run([]string{"-head", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || lines[0] != "1: 1 2 3" || lines[1] != "2: 2 4" {
		t.Errorf("head output:\n%s", out.String())
	}
}

func TestConvertAndPackRoundTrip(t *testing.T) {
	path := fixture(t)
	dir := t.TempDir()
	txt := filepath.Join(dir, "out.txt")
	var out bytes.Buffer
	if err := run([]string{"-convert", txt, path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "1 2 3\n2 4\n1\n" {
		t.Errorf("converted text = %q", raw)
	}
	// Pack text back to gzipped binary and compare stats.
	gz := filepath.Join(dir, "out.nmtx.gz")
	out.Reset()
	if err := run([]string{"-pack", gz, txt}, &out); err != nil {
		t.Fatal(err)
	}
	db, err := negmine.OpenDB(gz)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != 3 {
		t.Errorf("packed count = %d", db.Count())
	}
}

// TestUsageMentionsPipeline pins that -h points at the negmine/negmined
// consumers of packed .nmtx files.
func TestUsageMentionsPipeline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	for _, want := range []string{"negmine -data", "negmined"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("usage missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Error("two inputs accepted")
	}
	if err := run([]string{"/does/not/exist.nmtx"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}

// logFixture writes a small integer-basket text file the -log append path
// can consume.
func logFixture(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baskets.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLogAppendSealInfo(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	data := fixture(t) // 3 transactions, binary

	var out bytes.Buffer
	if err := run([]string{"-log", dir, "-append", data}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "appended 3 transactions (TIDs 1..3)") {
		t.Errorf("append output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-log", dir, "-seal"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sealed active segment") {
		t.Errorf("seal output:\n%s", out.String())
	}

	// A bare -log DIR (no action) prints the summary; each run call is a
	// fresh Open, so this also proves the appends survived a close.
	out.Reset()
	if err := run([]string{"-log", dir}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"sealed segments: 1 (3 transactions",
		"active segment:  0 transactions",
		"next TID:        4",
		"TIDs 1..3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("info missing %q:\n%s", want, s)
		}
	}
}

func TestLogAppendText(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	txt := logFixture(t, "1 2\n3\n")
	var out bytes.Buffer
	if err := run([]string{"-log", dir, "-append", txt, "-seal", "-info"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"appended 2 transactions (TIDs 1..2)", "sealed active segment", "next TID:        3"} {
		if !strings.Contains(s, want) {
			t.Errorf("combined run missing %q:\n%s", want, s)
		}
	}
}

func TestLogCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	txt := logFixture(t, "1 2\n2 3\n")
	var out bytes.Buffer
	// Two sealed segments, both far below the compaction threshold.
	for i := 0; i < 2; i++ {
		if err := run([]string{"-log", dir, "-append", txt, "-seal"}, &out); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if err := run([]string{"-log", dir, "-compact"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "compacted a run of small segments") {
		t.Errorf("compact output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-log", dir, "-compact", "-info"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "nothing to compact") {
		t.Errorf("second compact output:\n%s", s)
	}
	for _, want := range []string{"sealed segments: 1 (4 transactions", "TIDs 1..4"} {
		if !strings.Contains(s, want) {
			t.Errorf("post-compact info missing %q:\n%s", want, s)
		}
	}
}

func TestLogEmptyAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	txt := logFixture(t, "")
	var out bytes.Buffer
	if err := run([]string{"-log", dir, "-append", txt}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no transactions to append") {
		t.Errorf("empty append output:\n%s", out.String())
	}
}

func TestLogFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seal"}, &out); err == nil || !strings.Contains(err.Error(), "require -log") {
		t.Errorf("-seal without -log: %v", err)
	}
	if err := run([]string{"-info"}, &out); err == nil || !strings.Contains(err.Error(), "require -log") {
		t.Errorf("-info without -log: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "log")
	if err := run([]string{"-log", dir, "extra.nmtx"}, &out); err == nil || !strings.Contains(err.Error(), "no positional arguments") {
		t.Errorf("-log with positional arg: %v", err)
	}
	if err := run([]string{"-log", dir, "-append", "/does/not/exist.txt"}, &out); err == nil {
		t.Error("-append of a missing file accepted")
	}
}
