package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"negmine"
	"negmine/internal/datagen"
	"negmine/internal/serve"
)

// streamFixture generates a name-keyed streaming dataset: a taxonomy file,
// a seed basket-text file holding the first seedN baskets, and every basket
// as a list of item names (seed plus the remainder, which tests feed to
// POST /ingest).
func streamFixture(t *testing.T, dir string, n, seedN int) (taxPath, seedPath string, baskets [][]string) {
	t.Helper()
	p := datagen.Scaled(datagen.Short(), 50)
	p.NumTransactions = n
	p.Seed = 5
	tax, db, err := datagen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Scan(func(tx negmine.Transaction) error {
		names := make([]string, len(tx.Items))
		for i, x := range tx.Items {
			names[i] = tax.Name(x)
		}
		baskets = append(baskets, names)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	taxPath = filepath.Join(dir, "tax.txt")
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	seedPath = filepath.Join(dir, "seed.txt")
	var sb strings.Builder
	for _, b := range baskets[:seedN] {
		sb.WriteString(strings.Join(b, " "))
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(seedPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return taxPath, seedPath, baskets
}

// streamOpts mirrors the mining flags the streaming tests pass. The support
// floor is high enough that the smallest segment a test creates keeps a
// non-degenerate local threshold (see internal/incr).
func streamOpts() negmine.NegativeOptions {
	opt := negmine.NegativeOptions{MinSupport: 0.15, MinRI: 0.3, Algorithm: negmine.Improved}
	opt.Gen.Algorithm = negmine.Cumulate
	return opt
}

// referenceStore batch-mines the given baskets (by name, against the
// written taxonomy file) through the public API — the ground truth a
// streaming daemon must converge to.
func referenceStore(t *testing.T, taxPath string, baskets [][]string) *negmine.RuleStore {
	t.Helper()
	tax, err := loadTaxonomy(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	dict := tax.Dictionary()
	sets := make([][]negmine.Item, len(baskets))
	for i, b := range baskets {
		sets[i] = dict.InternSet(b...)
	}
	db := negmine.FromItemsets(sets...)
	rep, err := negmine.MineNegativeReport(db, tax, streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	return negmine.RuleStoreFromReport(rep)
}

// newStreamingDaemon is newDaemon plus the streaming-mode wiring run()
// performs: the ingest sink option and the controller attach.
func newStreamingDaemon(t *testing.T, args ...string) (*serve.Server, http.Handler, *config) {
	t.Helper()
	cfg, err := parseFlags(args, os.Stderr)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	opts := []serve.Option{serve.WithLogger(func(string, ...any) {})}
	if cfg.ingest != nil {
		opts = append(opts, serve.WithIngest(cfg.ingest))
		t.Cleanup(func() { cfg.ingest.Close() })
	}
	srv, err := serve.NewServer(context.Background(), cfg.loadFunc, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if cfg.ingest != nil {
		cfg.ingest.attach(srv)
	}
	return srv, srv.Handler(), cfg
}

type ingestResp struct {
	Accepted  int   `json:"accepted"`
	FirstTID  int64 `json:"firstTid"`
	LastTID   int64 `json:"lastTid"`
	Refreshed bool  `json:"refreshTriggered"`
}

type ingestMetrics struct {
	Ingest *struct {
		Segments     int   `json:"segments"`
		TxnsAppended int64 `json:"txnsAppended"`
		PendingTxns  int64 `json:"pendingTxns"`
		Refreshes    int64 `json:"refreshes"`
		NewSegments  int   `json:"lastRefreshNewSegments"`
	} `json:"ingest"`
}

func ingestBody(t *testing.T, baskets [][]string) string {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"baskets": baskets})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStreamingIngestEndToEnd drives the full streaming loop: seed import,
// durable /ingest, an incremental /reload that must converge to the batch
// ground truth, and a daemon restart recovering the same rule set from the
// segment log alone.
func TestStreamingIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	logDir := filepath.Join(dir, "log")
	taxPath, seedPath, baskets := streamFixture(t, dir, 500, 450)

	srv, h, cfg := newStreamingDaemon(t,
		"-ingest-dir", logDir, "-data", seedPath, "-tax", taxPath,
		"-minsup", "0.15", "-minri", "0.3")

	// The initial snapshot is mined from the seed.
	wantSeed := referenceStore(t, taxPath, baskets[:450])
	if got := srv.Snapshot().Len(); got != wantSeed.Len() {
		t.Fatalf("seed snapshot serves %d rules, reference mined %d", got, wantSeed.Len())
	}

	// Ingest the remaining 10%: TIDs continue after the seed.
	var ir ingestResp
	if code := postJSON(t, h, "/ingest", ingestBody(t, baskets[450:]), &ir); code != http.StatusAccepted {
		t.Fatalf("/ingest: %d", code)
	}
	if ir.Accepted != 50 || ir.FirstTID != 451 || ir.LastTID != 500 {
		t.Fatalf("ingest response = %+v", ir)
	}

	// Unknown names are rejected before anything is appended.
	if code := postJSON(t, h, "/ingest", `{"baskets":[["no-such-item"]]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown item: want 400")
	}

	// Incremental re-mine: the swapped snapshot equals the batch ground
	// truth over seed + delta, and only the delta segment was new.
	if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatal("/reload failed")
	}
	wantAll := referenceStore(t, taxPath, baskets)
	if wantAll.Len() == 0 {
		t.Fatal("ground truth mined no rules — the test is vacuous")
	}
	if got := srv.Snapshot().Len(); got != wantAll.Len() {
		t.Fatalf("post-ingest snapshot serves %d rules, reference mined %d", got, wantAll.Len())
	}

	var m ingestMetrics
	getJSON(t, h, "/metrics", &m)
	if m.Ingest == nil {
		t.Fatal("/metrics has no ingest block")
	}
	if m.Ingest.TxnsAppended != 500 || m.Ingest.PendingTxns != 0 {
		t.Fatalf("ingest metrics = %+v", *m.Ingest)
	}
	if m.Ingest.Refreshes != 2 || m.Ingest.NewSegments != 1 {
		t.Fatalf("refresh accounting = %+v (want 2 refreshes, 1 new segment)", *m.Ingest)
	}

	// Restart: a fresh daemon on the same log (no seed this time) recovers
	// every acknowledged transaction and serves the identical rule set.
	if err := cfg.ingest.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, _, _ := newStreamingDaemon(t,
		"-ingest-dir", logDir, "-tax", taxPath, "-minsup", "0.15", "-minri", "0.3")
	if got := srv2.Snapshot().Len(); got != wantAll.Len() {
		t.Fatalf("restarted snapshot serves %d rules, want %d", got, wantAll.Len())
	}
}

// TestStreamingAutoRemine exercises both re-mine triggers: the pending
// transaction count and the periodic timer.
func TestStreamingAutoRemine(t *testing.T) {
	dir := t.TempDir()
	taxPath, seedPath, baskets := streamFixture(t, dir, 400, 360)

	waitRefreshes := func(h http.Handler, want int64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			var m ingestMetrics
			getJSON(t, h, "/metrics", &m)
			if m.Ingest != nil && m.Ingest.Refreshes >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("refreshes stuck below %d: %+v", want, m.Ingest)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	t.Run("txns", func(t *testing.T) {
		_, h, _ := newStreamingDaemon(t,
			"-ingest-dir", filepath.Join(dir, "log-txns"), "-data", seedPath, "-tax", taxPath,
			"-minsup", "0.15", "-minri", "0.3", "-remine-txns", "40")
		var ir ingestResp
		if code := postJSON(t, h, "/ingest", ingestBody(t, baskets[360:380]), &ir); code != http.StatusAccepted {
			t.Fatalf("/ingest: %d", code)
		}
		if ir.Refreshed {
			t.Fatal("first batch (20 < 40 pending) triggered a re-mine")
		}
		if code := postJSON(t, h, "/ingest", ingestBody(t, baskets[380:400]), &ir); code != http.StatusAccepted {
			t.Fatalf("/ingest: %d", code)
		}
		if !ir.Refreshed {
			t.Fatal("second batch (40 pending) did not trigger a re-mine")
		}
		waitRefreshes(h, 2)
	})

	t.Run("every", func(t *testing.T) {
		srv, h, cfg := newStreamingDaemon(t,
			"-ingest-dir", filepath.Join(dir, "log-every"), "-data", seedPath, "-tax", taxPath,
			"-minsup", "0.15", "-minri", "0.3", "-remine-every", "30ms")
		if cfg.remineEvery != 30*time.Millisecond {
			t.Fatalf("remineEvery = %v", cfg.remineEvery)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go cfg.ingest.remineLoop(ctx, cfg.remineEvery)
		if code := postJSON(t, h, "/ingest", ingestBody(t, baskets[360:400]), nil); code != http.StatusAccepted {
			t.Fatal("/ingest failed")
		}
		waitRefreshes(h, 2)
		want := referenceStore(t, taxPath, baskets)
		if got := srv.Snapshot().Len(); got != want.Len() {
			t.Fatalf("timer-refreshed snapshot serves %d rules, want %d", got, want.Len())
		}
	})
}

func TestStreamingFlagValidation(t *testing.T) {
	var sink strings.Builder
	bad := [][]string{
		{"-tax", "t", "-ingest-dir", "d", "-report", "r.json"}, // report + streaming
		{"-tax", "t", "-ingest-dir", "d", "-watch"},            // watch polls our own writes
		{"-tax", "t", "-ingest-dir", "d", "-remine-every", "-1s"},
		{"-tax", "t", "-ingest-dir", "d", "-remine-txns", "-2"},
		{"-tax", "t", "-data", "d.txt", "-remine-txns", "5"},   // trigger without streaming
		{"-tax", "t", "-data", "d.txt", "-remine-every", "1s"}, // trigger without streaming
	}
	for _, args := range bad {
		_, err := parseFlags(args, &sink)
		if err == nil {
			t.Fatalf("%v accepted", args)
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: error %v is not a usageError", args, err)
		}
	}
}
