package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"negmine/internal/artifact"
	"negmine/internal/serve"
)

// snapController wires the artifact store (-snapshot-dir) into the daemon's
// load path. Two modes:
//
//   - Producer (a rule source is configured): the first load tries the
//     store's newest usable generation — an mmap that skips the mine/parse
//     entirely — and falls back to the inner loader when the store is empty
//     or every generation is rejected. Every later load (reload, watch,
//     ingest refresh) runs the inner loader and, with -snapshot-save,
//     persists the fresh snapshot as a new generation.
//
//   - Replica (no source, only -snapshot-dir): every load serves the
//     newest usable generation; there is nothing to mine and nothing to
//     persist. Combined with -watch on the store manifest, the daemon
//     follows a producer writing into the same directory.
//
// A corrupted or torn generation is rejected by snapfmt validation at load;
// the controller walks back to the next-newest generation, so the daemon
// serves the last durable snapshot rather than failing or re-mining.
type snapController struct {
	store *artifact.FS
	inner serve.LoadFunc // nil in replica mode
	save  bool
	cache int
	out   io.Writer

	mu     sync.Mutex
	booted bool
}

func (c *snapController) load(ctx context.Context) (*serve.Snapshot, error) {
	c.mu.Lock()
	first := !c.booted
	c.booted = true
	c.mu.Unlock()

	if c.inner == nil || first {
		snap, err := c.loadStore()
		switch {
		case err == nil:
			return snap, nil
		case c.inner == nil:
			return nil, fmt.Errorf("snapshot store %s: %w", c.store.Dir(), err)
		case !errors.Is(err, artifact.ErrEmpty):
			fmt.Fprintf(c.out, "negmined: snapshot store unusable (%v); rebuilding from source\n", err)
		}
	}
	snap, err := c.inner(ctx)
	if err != nil {
		return nil, err
	}
	if c.save {
		c.persist(snap)
	}
	return snap, nil
}

// loadStore opens the newest generation that validates, walking backwards
// past corrupted ones.
func (c *snapController) loadStore() (*serve.Snapshot, error) {
	gens, err := c.store.List()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, artifact.ErrEmpty
	}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i].Generation
		path, _, err := c.store.Localize(gen)
		if err == nil {
			var snap *serve.Snapshot
			if snap, err = serve.OpenSnapshotFile(path, c.cache); err == nil {
				return snap, nil
			}
		}
		if firstErr == nil {
			firstErr = err
		}
		fmt.Fprintf(c.out, "negmined: snapshot generation %d rejected: %v\n", gen, err)
	}
	return nil, firstErr
}

// persist stores snap as a new generation. Persistence is auxiliary: on
// failure the fresh snapshot still serves (with generation 0), and the
// store keeps its previous newest generation for the next restart.
func (c *snapController) persist(snap *serve.Snapshot) {
	info, err := c.store.Put(snap.SourceKind(), func(gen uint64, w io.Writer) error {
		return serve.EncodeSnapshot(w, snap, gen)
	})
	if err != nil {
		fmt.Fprintf(c.out, "negmined: snapshot persist failed (still serving the fresh snapshot): %v\n", err)
		return
	}
	// Stamp before the server publishes the snapshot (load has not returned
	// yet), so /metrics reports the generation queries are served from.
	snap.SetProvenance(info.Generation, snap.SourceKind())
	fmt.Fprintf(c.out, "negmined: snapshot generation %d persisted (%d bytes)\n", info.Generation, info.Size)
}
