package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"negmine/internal/cluster"
	"negmine/internal/report"
	"negmine/internal/serve"
)

func TestParseShardSpec(t *testing.T) {
	good := map[string]shardSpec{
		"0/1": {0, 1},
		"0/3": {0, 3},
		"2/3": {2, 3},
	}
	for in, want := range good {
		got, err := parseShardSpec(in)
		if err != nil || got != want {
			t.Fatalf("parseShardSpec(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "3", "a/3", "0/b", "-1/3", "3/3", "4/3", "0/0", "0/-1"} {
		if _, err := parseShardSpec(in); err == nil {
			t.Fatalf("parseShardSpec(%q) accepted", in)
		}
	}
}

func TestAdvertiseAddr(t *testing.T) {
	cases := []struct{ listen, override, want string }{
		{"[::]:8377", "", "127.0.0.1:8377"},
		{"0.0.0.0:8377", "", "127.0.0.1:8377"},
		{":8377", "", "127.0.0.1:8377"},
		{"10.1.2.3:8377", "", "10.1.2.3:8377"},
		{"[::]:8377", "db1:9000", "db1:9000"},
	}
	for _, c := range cases {
		if got := advertiseAddr(c.listen, c.override); got != c.want {
			t.Fatalf("advertiseAddr(%q, %q) = %q, want %q", c.listen, c.override, got, c.want)
		}
	}
}

func TestClusterFlagValidation(t *testing.T) {
	var sink strings.Builder
	base := []string{"-tax", "t.txt", "-report", "r.json"}
	with := func(extra ...string) []string { return append(append([]string{}, base...), extra...) }

	for _, bad := range [][]string{
		{"-shard", "3"},            // not k/n
		{"-shard", "3/3"},          // k out of range
		{"-shard", "-1/3"},         // negative k
		{"-cluster-join", "nope"},  // not an http URL
		{"-heartbeat", "500ms"},    // heartbeat without a cluster
		{"-advertise", "db1:9000"}, // advertise without a cluster
		{"-cluster-join", "http://r:1", "-heartbeat", "0s"},
		{"-cluster-join", "http://r:1", "-heartbeat", "-1s"},
	} {
		if _, err := parseFlags(with(bad...), &sink); err == nil {
			t.Fatalf("%v accepted", bad)
		}
	}

	// A full valid cluster config parses, and the join URL loses its
	// trailing slash (heartbeats POST join + "/cluster/heartbeat").
	cfg, err := parseFlags(with(
		"-shard", "1/3", "-cluster-join", "http://127.0.0.1:8378/",
		"-advertise", "db1:9000", "-heartbeat", "250ms", "-node-id", "n1"), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec != (shardSpec{1, 3}) || cfg.join != "http://127.0.0.1:8378" ||
		cfg.advertise != "db1:9000" || cfg.heartbeat != 250*time.Millisecond || cfg.nodeID != "n1" {
		t.Fatalf("cluster config = %+v", cfg)
	}

	// Joining without -shard means a single-shard cluster, not "unsharded".
	cfg, err = parseFlags(with("-cluster-join", "http://127.0.0.1:8378"), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec != (shardSpec{0, 1}) {
		t.Fatalf("joined spec = %+v, want 0/1", cfg.spec)
	}

	// -shard alone (no cluster) is fine: a statically sharded daemon.
	cfg, err = parseFlags(with("-shard", "0/2"), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec != (shardSpec{0, 2}) || cfg.join != "" {
		t.Fatalf("static shard config = %+v", cfg)
	}
}

// writeShardFixture writes a taxonomy plus a report whose rules spread over
// both shards of a 2-wide cluster, and returns the two paths with the
// per-shard rule counts implied by the cluster hash.
func writeShardFixture(t *testing.T, dir string) (repPath, taxPath string, perShard [2]int) {
	t.Helper()
	items := []string{"pepsi", "coke", "chips", "juice", "salsa", "bread"}
	rep := &report.NegativeReport{MinSupport: 0.02, MinRI: 0.5}
	var tax strings.Builder
	for i, it := range items {
		tax.WriteString("grocery " + it + "\n")
		cons := items[(i+1)%len(items)]
		rep.Rules = append(rep.Rules, report.NegativeRuleRecord{
			Antecedent:   []string{it},
			Consequent:   []string{cons},
			RuleInterest: 0.5 + float64(i)/100,
		})
		perShard[cluster.ShardOfItem(it, 2)]++
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("fixture items all hash to one shard: %v", perShard)
	}
	repPath = filepath.Join(dir, "rules.json")
	taxPath = filepath.Join(dir, "tax.txt")
	raw, _ := json.Marshal(rep)
	if err := os.WriteFile(repPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(taxPath, []byte(tax.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return repPath, taxPath, perShard
}

// TestShardFilterPartitionsDaemon boots the daemon as each shard of a
// 2-wide cluster and checks that the shards tile the full rule set, carry
// the shard label, and answer /rules only for rules they own.
func TestShardFilterPartitionsDaemon(t *testing.T) {
	repPath, taxPath, perShard := writeShardFixture(t, t.TempDir())

	full, _ := newDaemon(t, "-report", repPath, "-tax", taxPath)
	total := full.Snapshot().Len()

	var shards [2]*serve.Server
	for k := range shards {
		srv, _ := newDaemon(t, "-report", repPath, "-tax", taxPath,
			"-shard", []string{"0/2", "1/2"}[k])
		shards[k] = srv
	}
	if n0, n1 := shards[0].Snapshot().Len(), shards[1].Snapshot().Len(); n0+n1 != total ||
		n0 != perShard[0] || n1 != perShard[1] {
		t.Fatalf("shards hold %d + %d rules, want %d + %d (total %d)",
			n0, n1, perShard[0], perShard[1], total)
	}
	for k, srv := range shards {
		want := []string{"0/2", "1/2"}[k]
		if got := srv.Snapshot().Info().Shard; got != want {
			t.Fatalf("shard %d labeled %q, want %q", k, got, want)
		}
	}
	if got := full.Snapshot().Info().Shard; got != "" {
		t.Fatalf("unsharded daemon labeled %q", got)
	}

	// Shard ownership survives a reload (the Keep predicate is part of the
	// loader, not a one-time filter).
	if err := shards[0].Reload(context.Background()); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := shards[0].Snapshot().Len(); got != perShard[0] {
		t.Fatalf("after reload shard 0 holds %d rules, want %d", got, perShard[0])
	}
	if got := shards[0].Snapshot().Info().Shard; got != "0/2" {
		t.Fatalf("after reload shard label = %q", got)
	}
}

// TestClusterHeartbeatSender runs the clusterMember loop against a fake
// router and checks the advertised heartbeat payload.
func TestClusterHeartbeatSender(t *testing.T) {
	repPath, taxPath, _ := writeShardFixture(t, t.TempDir())
	srv, _ := newDaemon(t, "-report", repPath, "-tax", taxPath, "-shard", "1/2")

	beats := make(chan cluster.Heartbeat, 16)
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/cluster/heartbeat" {
			t.Errorf("unexpected router request %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
			return
		}
		var hb cluster.Heartbeat
		if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
			t.Errorf("bad heartbeat body: %v", err)
		}
		select {
		case beats <- hb:
		default:
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer router.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := &clusterMember{
		join:  router.URL,
		node:  "n1",
		addr:  "127.0.0.1:9001",
		spec:  shardSpec{shard: 1, shards: 2},
		every: 20 * time.Millisecond,
		logf:  func(string, ...any) {},
	}
	go m.run(ctx, srv)

	select {
	case hb := <-beats:
		if hb.Node != "n1" || hb.Addr != "127.0.0.1:9001" || hb.Shard != 1 || hb.Shards != 2 {
			t.Fatalf("heartbeat identity = %+v", hb)
		}
		if hb.Rules != srv.Snapshot().Len() || hb.Rules == 0 {
			t.Fatalf("heartbeat rules = %d, snapshot %d", hb.Rules, srv.Snapshot().Len())
		}
		if hb.Generation != srv.Snapshot().Info().Generation {
			t.Fatalf("heartbeat generation = %d", hb.Generation)
		}
		if hb.AgeSeconds < 0 {
			t.Fatalf("heartbeat age = %v", hb.AgeSeconds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat within 5s")
	}

	// The loop keeps beating, not just the registration beat.
	select {
	case <-beats:
	case <-time.After(5 * time.Second):
		t.Fatal("no second heartbeat within 5s")
	}
}

// TestClusterHeartbeatSurvivesRouterOutage checks the edge-triggered
// failure logging and that an unreachable router never stops the loop.
func TestClusterHeartbeatSurvivesRouterOutage(t *testing.T) {
	repPath, taxPath, _ := writeShardFixture(t, t.TempDir())
	srv, _ := newDaemon(t, "-report", repPath, "-tax", taxPath)

	var logs []string
	m := &clusterMember{
		join:  "http://127.0.0.1:1", // nothing listens on port 1
		node:  "n1",
		addr:  "127.0.0.1:9001",
		spec:  shardSpec{0, 1},
		every: 10 * time.Millisecond,
		logf:  func(format string, args ...any) { logs = append(logs, format) },
	}
	m.client = &http.Client{Timeout: 10 * time.Millisecond}
	ctx := context.Background()
	m.beat(ctx, srv)
	m.beat(ctx, srv)
	if len(logs) != 1 || !strings.Contains(logs[0], "failed") {
		t.Fatalf("outage logs = %q, want one failure edge", logs)
	}
	if !m.failing {
		t.Fatal("member not marked failing")
	}
}
