package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"negmine"
)

// ingestSoakDuration is how long TestIngestSoak sustains concurrent load: a
// quick burst by default, 30s when CI sets NEGMINE_SOAK.
func ingestSoakDuration() time.Duration {
	if v := os.Getenv("NEGMINE_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 300 * time.Millisecond
}

// TestIngestSoak hammers a streaming daemon with concurrent /ingest writers
// and /rules readers while the pending-transaction trigger re-mines in the
// background. Invariants: every request succeeds, acknowledged TID ranges
// never overlap or repeat, and once the storm stops, one final refresh
// serves exactly the rule set a batch mine of the log produces.
//
// -maxk bounds the itemset size: under a soak, a refresh can seal a very
// small trailing segment, and Partition's phase I degenerates on tiny
// partitions (ceil(minSup·|segment|) → 1 makes every subset locally large).
// Capping k keeps that worst case polynomial, which is also the documented
// operational guidance.
func TestIngestSoak(t *testing.T) {
	dir := t.TempDir()
	taxPath, seedPath, baskets := streamFixture(t, dir, 400, 400)

	srv, h, cfg := newStreamingDaemon(t,
		"-ingest-dir", filepath.Join(dir, "log"), "-data", seedPath, "-tax", taxPath,
		"-minsup", "0.15", "-minri", "0.3", "-maxk", "4", "-remine-txns", "50")

	queryItem := baskets[0][0]
	deadline := time.Now().Add(ingestSoakDuration())

	type tidRange struct{ first, last int64 }
	var (
		mu     sync.Mutex
		ranges []tidRange
		wg     sync.WaitGroup
	)
	const writers, readers = 4, 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				lo := rng.Intn(len(baskets) - 5)
				var ir ingestResp
				if code := postJSON(t, h, "/ingest", ingestBody(t, baskets[lo:lo+5]), &ir); code != http.StatusAccepted {
					t.Errorf("/ingest: %d", code)
					return
				}
				if ir.Accepted != 5 || ir.LastTID != ir.FirstTID+4 {
					t.Errorf("ingest response = %+v", ir)
					return
				}
				mu.Lock()
				ranges = append(ranges, tidRange{ir.FirstTID, ir.LastTID})
				mu.Unlock()
			}
		}(int64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/rules?item="+queryItem, nil))
				if rec.Code != http.StatusOK {
					t.Errorf("/rules during soak: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(ranges) == 0 {
		t.Fatal("soak ingested nothing")
	}

	// Acknowledged TID ranges are disjoint and gap-free from the seed on:
	// the log never re-issues or loses an acknowledged transaction.
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].first < ranges[j].first })
	next := int64(401) // seed is TIDs 1..400
	for _, r := range ranges {
		if r.first != next {
			t.Fatalf("TID range starts at %d, want %d (overlap or gap)", r.first, next)
		}
		next = r.last + 1
	}

	// Quiesce: one final synchronous refresh must serve exactly what a batch
	// mine of the full log produces.
	if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatal("final /reload failed")
	}
	var sets [][]negmine.Item
	if err := cfg.ingest.log.Scan(func(tx negmine.Transaction) error {
		sets = append(sets, tx.Items.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(sets)) != next-1 {
		t.Fatalf("log holds %d transactions, acknowledged %d", len(sets), next-1)
	}
	opt := streamOpts()
	opt.Gen.MaxK = 4
	res, err := negmine.MineNegative(negmine.FromItemsets(sets...), cfg.ingest.tax, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := negmine.NewRuleStore(res, cfg.ingest.tax.Name)
	if got := srv.Snapshot().Len(); got != want.Len() {
		t.Fatalf("post-soak snapshot serves %d rules, batch mine of the log gives %d", got, want.Len())
	}

	var m ingestMetrics
	getJSON(t, h, "/metrics", &m)
	if m.Ingest == nil || m.Ingest.TxnsAppended != next-1 {
		t.Fatalf("ingest metrics after soak = %+v (want %d appended)", m.Ingest, next-1)
	}
	fmt.Fprintf(os.Stderr, "ingest soak: %d batches, %d txns, %d refreshes\n",
		len(ranges), next-401, m.Ingest.Refreshes)
}
