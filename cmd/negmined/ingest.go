package main

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"negmine"
	"negmine/internal/incr"
	"negmine/internal/item"
	"negmine/internal/seglog"
	"negmine/internal/serve"
)

// ingestController is the streaming-mode backend: it owns the segment log
// and the incremental miner, implements serve.IngestSink for POST /ingest,
// and supplies the LoadFunc whose refreshes the auto re-mine triggers fire.
//
// The taxonomy (and its dictionary) is loaded once at startup and never
// reloaded: transaction ids in the log are only meaningful against the
// dictionary they were interned into, and a read-only dictionary is what
// makes concurrent /ingest and snapshot queries safe without locking.
type ingestController struct {
	log   *seglog.Log
	miner *incr.Miner
	tax   *negmine.Taxonomy
	opt   negmine.NegativeOptions

	srv        atomic.Pointer[serve.Server] // set after NewServer (attach)
	pending    atomic.Int64                 // txns appended since last refresh start
	refreshes  atomic.Int64                 // completed refreshes
	wm         atomic.Pointer[watermark]    // newest append (tid, wall time)
	remineTxns int64                        // pending threshold that triggers a re-mine (0 = off)
	cacheSize  int                          // hot-item query cache bound (serve.Meta.CacheSize)

	// ha, when non-nil, routes writes through the primary/standby protocol
	// (fencing token, replication ack) instead of plain appends. Set once in
	// run(), before the listener accepts traffic.
	ha *haController

	// keep, when non-nil, is the cluster shard predicate: only rules it
	// accepts are indexed into refreshed snapshots (serve.Meta.Keep).
	keep func(ante, cons []string) bool
}

// newIngestController opens (or creates) the segment log, seeds it from
// dataPath when the log is empty and a seed is given, and returns the
// controller ready to be wired into a Server.
func newIngestController(dir, dataPath, taxPath string, opt negmine.NegativeOptions, remineTxns, cacheSize, dedupWindow int, keep func(ante, cons []string) bool) (*ingestController, error) {
	tax, err := loadTaxonomy(taxPath)
	if err != nil {
		return nil, err
	}
	log, err := seglog.Open(dir, seglog.Options{DedupWindow: dedupWindow})
	if err != nil {
		return nil, err
	}
	c := &ingestController{
		log:        log,
		miner:      incr.New(tax, opt),
		tax:        tax,
		opt:        opt,
		remineTxns: int64(remineTxns),
		cacheSize:  cacheSize,
		keep:       keep,
	}
	if dataPath != "" && log.Count() == 0 {
		if err := c.seed(dataPath); err != nil {
			log.Close()
			return nil, fmt.Errorf("seeding %s from %s: %w", dir, dataPath, err)
		}
	}
	// An empty log (no seed) is fine: the daemon starts with an empty rule
	// set and /ingest fills the log from scratch.
	return c, nil
}

// watermark is one (transaction id, append wall time) pair. The controller
// keeps the newest one so each refreshed snapshot can be stamped with the
// ingest horizon it covers (serve.Snapshot.SetWatermark).
type watermark struct {
	tid int64
	at  time.Time
}

// noteAppend advances the append watermark to tid at the current wall time.
// Monotonic in tid: a slow writer publishing after a faster one cannot move
// the watermark backwards.
func (c *ingestController) noteAppend(tid int64) {
	if tid <= 0 {
		return
	}
	w := &watermark{tid: tid, at: time.Now()}
	for {
		old := c.wm.Load()
		if old != nil && old.tid >= tid {
			return
		}
		if c.wm.CompareAndSwap(old, w) {
			return
		}
	}
}

// seed imports a transaction file into the empty log in sealed batches, so
// the first refresh starts from reasonably sized partitions.
func (c *ingestController) seed(dataPath string) error {
	db, err := loadData(dataPath, c.tax.Dictionary())
	if err != nil {
		return err
	}
	const batch = 4096
	buf := make([]item.Itemset, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		_, last, err := c.log.Append(buf)
		if err != nil {
			return err
		}
		c.noteAppend(last)
		buf = buf[:0]
		return c.log.Seal()
	}
	err = db.Scan(func(tx negmine.Transaction) error {
		buf = append(buf, tx.Items.Clone())
		if len(buf) == batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// attach hands the controller the server whose reloads it triggers. Called
// once, after NewServer and before the listener accepts traffic.
func (c *ingestController) attach(srv *serve.Server) { c.srv.Store(srv) }

// Close closes the underlying segment log.
func (c *ingestController) Close() error { return c.log.Close() }

// load is the streaming-mode LoadFunc: an incremental refresh over the log.
func (c *ingestController) load(ctx context.Context) (*serve.Snapshot, error) {
	// Best effort: appends racing with the refresh may be sealed into it and
	// still counted pending until the next refresh — pending only drives
	// triggers and metrics, never correctness.
	c.pending.Store(0)
	// Capture the watermark before Refresh seals the active segment:
	// everything appended up to this point is guaranteed into the refresh,
	// so the stamp is a lower bound and freshness is only ever overstated,
	// never understated.
	wm := c.wm.Load()
	res, err := c.miner.Refresh(c.log)
	if err != nil {
		return nil, err
	}
	rep := negmine.BuildNegativeReport(res, c.opt.MinSupport, c.opt.MinRI, c.tax.Name)
	st := negmine.RuleStoreFromReport(rep)
	c.refreshes.Add(1)
	meta := serve.Meta{
		Source:     "ingest " + c.log.Dir(),
		MinSupport: c.opt.MinSupport,
		MinRI:      c.opt.MinRI,
		CacheSize:  c.cacheSize,
		Keep:       c.keep,
	}
	snap := serve.BuildSnapshot(st, c.tax, meta)
	snap.SetProvenance(0, "ingest")
	if wm != nil {
		snap.SetWatermark(wm.tid, wm.at)
	}
	return snap, nil
}

// Ingest implements serve.IngestSink: name resolution against the read-only
// dictionary, a durable (and on HA pairs, replicated) append, and the
// transaction-count re-mine trigger.
func (c *ingestController) Ingest(ctx context.Context, batch serve.IngestBatch) (serve.IngestResult, error) {
	dict := c.tax.Dictionary()
	sets := make([]item.Itemset, len(batch.Baskets))
	for i, b := range batch.Baskets {
		items := make([]item.Item, len(b))
		for j, name := range b {
			id, ok := dict.Lookup(name)
			if !ok {
				return serve.IngestResult{}, fmt.Errorf("%w: basket %d: unknown item %q", serve.ErrIngestRejected, i, name)
			}
			items[j] = id
		}
		sets[i] = item.New(items...)
	}
	var (
		ares seglog.AppendResult
		err  error
	)
	if c.ha != nil {
		ares, err = c.ha.ingestBatch(ctx, sets, batch.Key, batch.Seq)
	} else {
		ares, err = c.log.AppendBatch(seglog.Batch{Baskets: sets, Epoch: -1, Key: batch.Key, Seq: batch.Seq})
	}
	if err != nil {
		return serve.IngestResult{}, mapSeglogErr(err)
	}
	res := serve.IngestResult{FirstTID: ares.First, LastTID: ares.Last, Accepted: len(sets), Duplicate: ares.Duplicate}
	if ares.Duplicate {
		// A replayed ack: nothing new was appended, so nothing becomes pending.
		return res, nil
	}
	c.noteAppend(ares.Last)
	p := c.pending.Add(int64(len(sets)))
	if c.remineTxns > 0 && p >= c.remineTxns {
		if srv := c.srv.Load(); srv != nil {
			// The reload outlives this request, like POST /reload's 202 path.
			res.Refreshed = srv.TriggerReload(context.Background())
		}
	}
	return res, nil
}

// mapSeglogErr translates seglog write-path refusals into the serve layer's
// sentinel errors so the handler can pick the right status code. Errors that
// already carry a serve sentinel (the HA controller's) pass through.
func mapSeglogErr(err error) error {
	switch {
	case errors.Is(err, serve.ErrIngestFenced),
		errors.Is(err, serve.ErrIngestNotPrimary),
		errors.Is(err, serve.ErrIngestStale),
		errors.Is(err, serve.ErrIngestUnavailable):
		return err
	case errors.Is(err, seglog.ErrFenced):
		return fmt.Errorf("%w: %v", serve.ErrIngestFenced, err)
	case errors.Is(err, seglog.ErrStaleSeq):
		return fmt.Errorf("%w: %v", serve.ErrIngestStale, err)
	}
	return err
}

// noteReplicated accounts transactions that arrived through replication
// (store adoption or the tail stream) rather than /ingest, so the standby's
// auto re-mine trigger and pendingTxns gauge track the primary's writes.
func (c *ingestController) noteReplicated(n int64) {
	if n <= 0 {
		return
	}
	c.noteAppend(c.log.NextTID() - 1)
	p := c.pending.Add(n)
	if c.remineTxns > 0 && p >= c.remineTxns {
		if srv := c.srv.Load(); srv != nil {
			srv.TriggerReload(context.Background())
		}
	}
}

// RoleLag reports the node's ingest role and replication lag for heartbeats.
// A solo streaming daemon is its own primary with nothing to lag behind.
func (c *ingestController) RoleLag() (string, int) {
	if c.ha != nil {
		return c.ha.roleLag()
	}
	return haRolePrimary, 0
}

// Stats implements serve.IngestSink for the /metrics ingest block.
func (c *ingestController) Stats() serve.IngestStats {
	ls := c.log.Stats()
	ms := c.miner.LastStats()
	st := serve.IngestStats{
		Segments:               ls.Segments,
		SealedTxns:             ls.SealedTxns,
		SealedBytes:            ls.SealedBytes,
		ActiveTxns:             ls.ActiveTxns,
		TxnsAppended:           ls.TxnsAppended,
		Seals:                  ls.Seals,
		Compactions:            ls.Compactions,
		PendingTxns:            c.pending.Load(),
		Refreshes:              c.refreshes.Load(),
		LastRefreshSeconds:     ms.Duration.Seconds(),
		LastRefreshNewSegments: ms.NewSegments,
		LastRefreshOldScans:    ms.OldSegmentScans,
		Epoch:                  ls.Epoch,
		FencedAppends:          ls.FencedAppends,
		DedupHits:              ls.DedupHits,
		DedupEntries:           ls.DedupEntries,
	}
	st.Role, st.ReplLagSegments = c.RoleLag()
	return st
}

// remineLoop triggers a background refresh every interval while there is
// pending data, until ctx is cancelled.
func (c *ingestController) remineLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if c.pending.Load() == 0 {
				continue
			}
			if srv := c.srv.Load(); srv != nil {
				srv.TriggerReload(ctx)
			}
		}
	}
}
