package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"negmine"
	"negmine/internal/artifact"
	"negmine/internal/atomicio"
	"negmine/internal/bench"
	"negmine/internal/fault"
	"negmine/internal/serve"
	"negmine/internal/txdb"
)

// newSnapDaemon is newDaemon with a capturable output writer, so tests can
// assert on the snapshot controller's boot/rejection/persist log lines.
func newSnapDaemon(t *testing.T, out io.Writer, args ...string) (*serve.Server, http.Handler) {
	t.Helper()
	cfg, err := parseFlags(args, out)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	srv, err := serve.NewServer(context.Background(), cfg.loadFunc,
		serve.WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv, srv.Handler()
}

// writeShortDataset materializes the Short dataset as the .nmtx + taxonomy
// file pair mining mode consumes, and returns their paths.
func writeShortDataset(t *testing.T, dir string) (dataPath, taxPath string) {
	t.Helper()
	ds, err := bench.Short(100, 1)
	if err != nil {
		t.Fatalf("Short: %v", err)
	}
	dataPath = filepath.Join(dir, "short.nmtx")
	taxPath = filepath.Join(dir, "tax.txt")
	if err := txdb.WriteFile(dataPath, ds.DB); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Tax.Write(tf); err != nil {
		t.Fatalf("taxonomy Write: %v", err)
	}
	tf.Close()
	return dataPath, taxPath
}

type metricsSnap struct {
	Snapshot struct {
		Rules      int    `json:"rules"`
		SourceKind string `json:"sourceKind"`
		Generation uint64 `json:"generation"`
	} `json:"snapshot"`
}

// TestSnapshotRestartRecovery is the restart-recovery drill: a mining daemon
// persists its snapshot, a refresh's persist is torn mid-write (the
// "kill -9 during refresh" window), and a restarted daemon must serve the
// last durable generation from mmap without touching the transaction file.
// Only when that generation is corrupted on disk does a restart re-mine.
func TestSnapshotRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	dataPath, taxPath := writeShortDataset(t, dir)
	snapDir := filepath.Join(dir, "snaps")
	args := []string{"-data", dataPath, "-tax", taxPath,
		"-minsup", "0.02", "-minri", "0.5", "-snapshot-dir", snapDir}

	// Daemon A: empty store, so boot mines and persists generation 1.
	var logA strings.Builder
	srvA, hA := newSnapDaemon(t, &logA, args...)
	info := srvA.Snapshot().Info()
	if info.SourceKind != "mined" || info.Generation != 1 {
		t.Fatalf("boot A: sourceKind=%q generation=%d, want mined/1", info.SourceKind, info.Generation)
	}
	if !strings.Contains(logA.String(), "snapshot generation 1 persisted") {
		t.Fatalf("boot A did not log the persist:\n%s", logA.String())
	}
	wantRules := srvA.Snapshot().Len()
	if wantRules == 0 {
		t.Fatal("daemon A mined no rules")
	}
	// Reference answer set to compare restarted daemons against.
	refItem := srvA.Snapshot().Entry(0).Antecedent[0]
	var wantResp rulesResp
	getJSON(t, hA, "/rules?item="+refItem, &wantResp)

	var m metricsSnap
	getJSON(t, hA, "/metrics", &m)
	if m.Snapshot.SourceKind != "mined" || m.Snapshot.Generation != 1 {
		t.Fatalf("/metrics snapshot block = %+v", m.Snapshot)
	}

	// Tear the refresh persist mid-write: the atomic writer dies, so the
	// store must keep generation 1 as its newest durable snapshot while the
	// daemon still swaps in (and serves) the freshly mined rule set.
	logA.Reset()
	disarm := fault.Enable(atomicio.PointWrite, fault.Error("torn mid-refresh"))
	code := postJSON(t, hA, "/reload?wait=1", "", nil)
	disarm()
	if code != http.StatusOK {
		t.Fatalf("/reload during torn persist: %d", code)
	}
	if !strings.Contains(logA.String(), "snapshot persist failed") {
		t.Fatalf("torn persist not logged:\n%s", logA.String())
	}
	if got := srvA.Snapshot().Len(); got != wantRules {
		t.Fatalf("after torn persist: serving %d rules, want %d", got, wantRules)
	}
	store, err := artifact.OpenFS(snapDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest, err := store.Latest(); err != nil || latest.Generation != 1 {
		t.Fatalf("store after torn persist: latest=%+v err=%v, want generation 1", latest, err)
	}

	// Daemon B restarts onto the same store. Arming the transaction-scan
	// failpoint proves the boot cannot be re-mining: any read of the .nmtx
	// file would fail the load.
	disarm = fault.Enable(txdb.PointScan, fault.Error("restart must not re-mine"))
	var logB strings.Builder
	srvB, hB := newSnapDaemon(t, &logB, args...)
	disarm()
	info = srvB.Snapshot().Info()
	if info.SourceKind != "mmap" || info.Generation != 1 {
		t.Fatalf("boot B: sourceKind=%q generation=%d, want mmap/1", info.SourceKind, info.Generation)
	}
	if got := srvB.Snapshot().Len(); got != wantRules {
		t.Fatalf("restarted daemon serves %d rules, want %d", got, wantRules)
	}
	var gotResp rulesResp
	getJSON(t, hB, "/rules?item="+refItem, &gotResp)
	if !reflect.DeepEqual(gotResp, wantResp) {
		t.Fatalf("mmap-booted answers diverge:\n got %+v\nwant %+v", gotResp, wantResp)
	}
	getJSON(t, hB, "/metrics", &m)
	if m.Snapshot.SourceKind != "mmap" || m.Snapshot.Generation != 1 || m.Snapshot.Rules != wantRules {
		t.Fatalf("/metrics after restart = %+v", m.Snapshot)
	}

	// A reload on the restarted daemon re-mines (by design: only boot reads
	// the store) and persists the result as generation 2.
	if code := postJSON(t, hB, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("/reload on B: %d", code)
	}
	info = srvB.Snapshot().Info()
	if info.SourceKind != "mined" || info.Generation != 2 {
		t.Fatalf("B after reload: sourceKind=%q generation=%d, want mined/2", info.SourceKind, info.Generation)
	}

	// Corrupt both stored generations on disk: the next restart walks past
	// them (logging each rejection) and falls back to mining.
	gens, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("store holds %d generations, want 2", len(gens))
	}
	for _, g := range gens {
		path, _, err := store.Localize(g.Generation)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x20
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var logC strings.Builder
	srvC, _ := newSnapDaemon(t, &logC, args...)
	info = srvC.Snapshot().Info()
	if info.SourceKind != "mined" || info.Generation != 3 {
		t.Fatalf("boot C: sourceKind=%q generation=%d, want mined/3", info.SourceKind, info.Generation)
	}
	if !strings.Contains(logC.String(), "generation 2 rejected") ||
		!strings.Contains(logC.String(), "generation 1 rejected") ||
		!strings.Contains(logC.String(), "rebuilding from source") {
		t.Fatalf("corrupt generations not logged:\n%s", logC.String())
	}
	if got := srvC.Snapshot().Len(); got != wantRules {
		t.Fatalf("re-mined daemon serves %d rules, want %d", got, wantRules)
	}
}

// TestSnapshotReplicaMode runs a producer/replica pair over one store: the
// producer (report mode) persists generations, the replica serves them from
// mmap with no taxonomy or data files at all, and a reload follows the
// producer onto the next generation.
func TestSnapshotReplicaMode(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "rules.json")
	taxPath := filepath.Join(dir, "tax.txt")
	writePaperReport(t, repPath, taxPath)
	snapDir := filepath.Join(dir, "snaps")

	var prodLog strings.Builder
	srvP, _ := newSnapDaemon(t, &prodLog,
		"-report", repPath, "-tax", taxPath, "-snapshot-dir", snapDir)
	if info := srvP.Snapshot().Info(); info.SourceKind != "json" || info.Generation != 1 {
		t.Fatalf("producer boot: %+v", info)
	}

	// Replica: only -snapshot-dir. No -tax, no source — the snapshot embeds
	// the dictionary and ancestor chains.
	var repLog strings.Builder
	srvR, hR := newSnapDaemon(t, &repLog, "-snapshot-dir", snapDir)
	info := srvR.Snapshot().Info()
	if info.SourceKind != "mmap" || info.Generation != 1 {
		t.Fatalf("replica boot: sourceKind=%q generation=%d, want mmap/1", info.SourceKind, info.Generation)
	}
	if got, want := srvR.Snapshot().Len(), srvP.Snapshot().Len(); got != want {
		t.Fatalf("replica serves %d rules, producer %d", got, want)
	}

	// The ancestor index must work from the embedded dictionary: bryers
	// expands through frozenyogurt and surfaces the category-level rule.
	var rr rulesResp
	getJSON(t, hR, "/rules?item=bryers", &rr)
	if len(rr.Expanded) < 2 || rr.Expanded[1] != "frozenyogurt" {
		t.Fatalf("replica expansion = %v", rr.Expanded)
	}
	if len(rr.Rules) == 0 {
		t.Fatal("replica served no rules for bryers")
	}

	// Producer persists generation 2; a replica reload swaps onto it.
	if code := postJSON(t, srvP.Handler(), "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("producer /reload: %d", code)
	}
	if info := srvP.Snapshot().Info(); info.Generation != 2 {
		t.Fatalf("producer after reload: %+v", info)
	}
	if code := postJSON(t, hR, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("replica /reload: %d", code)
	}
	info = srvR.Snapshot().Info()
	if info.SourceKind != "mmap" || info.Generation != 2 {
		t.Fatalf("replica after reload: sourceKind=%q generation=%d, want mmap/2", info.SourceKind, info.Generation)
	}

	// The replica's -watch source is the store manifest, which every Put
	// rewrites — that is what makes -watch follow the producer.
	cfg, err := parseFlags([]string{"-snapshot-dir", snapDir}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(cfg.source) != artifact.ManifestName {
		t.Fatalf("replica watch source = %q, want the store manifest", cfg.source)
	}
}

// TestSnapshotReplicaEmptyStore: a replica pointed at an empty store has
// nothing to serve and must fail startup with a clear error.
func TestSnapshotReplicaEmptyStore(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot-dir", t.TempDir()}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	_, err = serve.NewServer(context.Background(), cfg.loadFunc, serve.WithLogger(func(string, ...any) {}))
	if err == nil {
		t.Fatal("replica on empty store started")
	}
	if !errors.Is(err, artifact.ErrEmpty) {
		t.Fatalf("replica boot error = %v, want ErrEmpty in the chain", err)
	}
}

// TestSnapshotSaveDisabled: -snapshot-save=false boots from the store when
// possible but never writes generations.
func TestSnapshotSaveDisabled(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "rules.json")
	taxPath := filepath.Join(dir, "tax.txt")
	writePaperReport(t, repPath, taxPath)
	snapDir := filepath.Join(dir, "snaps")

	srv, _ := newSnapDaemon(t, io.Discard, "-report", repPath, "-tax", taxPath,
		"-snapshot-dir", snapDir, "-snapshot-save=false")
	info := srv.Snapshot().Info()
	if info.SourceKind != "json" || info.Generation != 0 {
		t.Fatalf("boot: %+v, want json/0", info)
	}
	store, err := artifact.OpenFS(snapDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gens, err := store.List(); err != nil || len(gens) != 0 {
		t.Fatalf("store gained generations with -snapshot-save=false: %v %v", gens, err)
	}
}

// TestSnapshotFlagValidation covers the snapshot flag combinations.
func TestSnapshotFlagValidation(t *testing.T) {
	var sink strings.Builder
	base := []string{"-tax", "t.txt", "-report", "r.json"}
	for _, extra := range [][]string{
		{"-snapshot-save=false"},                       // save toggle without a store
		{"-snapshot-keep", "2"},                        // retention without a store
		{"-snapshot-dir", "d", "-snapshot-keep", "-1"}, // negative retention
	} {
		_, err := parseFlags(append(append([]string{}, base...), extra...), &sink)
		if err == nil {
			t.Fatalf("%v accepted", extra)
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: error %v is not a usageError", extra, err)
		}
	}
	// Replica mode is the one configuration that needs neither -tax nor a
	// source; adding a source back requires -tax again.
	if _, err := parseFlags([]string{"-snapshot-dir", t.TempDir()}, &sink); err != nil {
		t.Fatalf("replica flags rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-snapshot-dir", "d", "-report", "r.json"}, &sink); err == nil {
		t.Fatal("-snapshot-dir with -report but no -tax accepted")
	}
}

// writePaperReport writes the paper worked example as a report JSON +
// taxonomy file pair (the report-mode inputs).
func writePaperReport(t *testing.T, repPath, taxPath string) {
	t.Helper()
	tax, db, err := bench.PaperExample()
	if err != nil {
		t.Fatalf("PaperExample: %v", err)
	}
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatalf("MineNegative: %v", err)
	}
	rf, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := negmine.WriteNegativeJSON(rf, res, 0.04, 0.5, tax.Name); err != nil {
		t.Fatalf("WriteNegativeJSON: %v", err)
	}
	rf.Close()
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatalf("taxonomy Write: %v", err)
	}
	tf.Close()
}
