package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"negmine/internal/cluster"
	"negmine/internal/serve"
)

// shardSpec is the parsed -shard k/n assignment: this daemon serves shard k
// of an n-wide cluster. The zero value means "unsharded".
type shardSpec struct {
	shard  int
	shards int
}

func (s shardSpec) active() bool { return s.shards > 0 }

// keep returns the shard-ownership predicate for serve.Meta.Keep, or nil
// when the whole rule set belongs here (unsharded, or a 1-wide cluster).
func (s shardSpec) keep() func(ante, cons []string) bool {
	if s.shards <= 1 {
		return nil
	}
	return func(ante, cons []string) bool {
		return cluster.ShardOfAntecedent(ante, s.shards) == s.shard
	}
}

// parseShardSpec parses "k/n" with 0 ≤ k < n.
func parseShardSpec(v string) (shardSpec, error) {
	ks, ns, ok := strings.Cut(v, "/")
	if !ok {
		return shardSpec{}, fmt.Errorf("want k/n (e.g. 0/3), got %q", v)
	}
	k, err := strconv.Atoi(ks)
	if err != nil {
		return shardSpec{}, fmt.Errorf("bad shard index %q: %v", ks, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return shardSpec{}, fmt.Errorf("bad shard count %q: %v", ns, err)
	}
	if n < 1 || k < 0 || k >= n {
		return shardSpec{}, fmt.Errorf("shard %d/%d out of range (want 0 ≤ k < n)", k, n)
	}
	return shardSpec{shard: k, shards: n}, nil
}

// advertiseAddr derives the address the router should dial: the -advertise
// override when given, otherwise the actual listen address with wildcard
// hosts rewritten to loopback (a router can't dial ":8377" or "[::]:8377").
func advertiseAddr(listen, override string) string {
	if override != "" {
		return override
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// clusterMember periodically POSTs this daemon's heartbeat to the router:
// liveness plus what it is serving (shard, snapshot generation/age/rules,
// govern load state), so the router can route around dead replicas and
// prefer fresh ones. Heartbeating is fire-and-forget — an unreachable
// router never affects serving, and the next successful beat re-registers
// the node from scratch (the router holds no durable state).
type clusterMember struct {
	join   string // router base URL (no trailing slash)
	node   string
	addr   string // advertised host:port
	spec   shardSpec
	every  time.Duration
	client *http.Client
	logf   func(format string, args ...any)

	// roleFn reports the node's ingest role (primary/standby/fenced/replica)
	// and replication lag for the heartbeat (nil = not reported).
	roleFn func() (string, int)

	failing bool // last beat failed (logs only on edges, not every tick)
}

// run sends one immediate heartbeat (registration) and then beats every
// interval until ctx is cancelled.
func (m *clusterMember) run(ctx context.Context, srv *serve.Server) {
	if m.client == nil {
		m.client = &http.Client{Timeout: m.every}
	}
	m.beat(ctx, srv)
	t := time.NewTicker(m.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.beat(ctx, srv)
		}
	}
}

func (m *clusterMember) beat(ctx context.Context, srv *serve.Server) {
	snap := srv.Snapshot()
	info := snap.Info()
	hb := cluster.Heartbeat{
		Node:       m.node,
		Addr:       m.addr,
		Shard:      m.spec.shard,
		Shards:     m.spec.shards,
		Generation:       info.Generation,
		AgeSeconds:       snap.Age().Seconds(),
		FreshnessSeconds: snap.Freshness().Seconds(),
		Rules:            info.Rules,
		SourceKind:       info.SourceKind,
	}
	if gov := srv.Governor(); gov != nil {
		hb.Degraded = gov.Stats().Degraded
	}
	if m.roleFn != nil {
		hb.IngestRole, hb.ReplLagSegments = m.roleFn()
	}
	err := m.post(ctx, hb)
	switch {
	case err != nil && !m.failing:
		m.failing = true
		m.logf("cluster: heartbeat to %s failed: %v", m.join, err)
	case err == nil && m.failing:
		m.failing = false
		m.logf("cluster: heartbeat to %s recovered", m.join)
	}
}

func (m *clusterMember) post(ctx context.Context, hb cluster.Heartbeat) error {
	body, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	hctx, cancel := context.WithTimeout(ctx, m.every)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost,
		m.join+"/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("router answered HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}
