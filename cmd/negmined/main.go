// Command negmined is the rule-serving daemon: it loads a mined negative
// rule set into an immutable, item-indexed snapshot and answers concurrent
// queries over HTTP, re-mining (or re-reading) and atomically hot-swapping
// the snapshot without ever blocking readers.
//
// Three source modes:
//
//	negmined -report rules.json -tax taxonomy.txt
//	    serve a report previously written by `negmine -format json`
//	    (or WriteNegativeJSON); /reload re-reads the file
//
//	negmined -data baskets.txt -tax taxonomy.txt -minsup 0.02 -minri 0.5
//	    mine at startup with the full pipeline; /reload re-mines from the
//	    (possibly updated) data file
//
//	negmined -ingest-dir ./log -tax taxonomy.txt [-data seed.txt]
//	    streaming mode: transactions live in a durable segment log, POST
//	    /ingest appends to it, and /reload (or the -remine-every /
//	    -remine-txns triggers) re-mines incrementally — only segments new
//	    since the last refresh are scanned. -data seeds an empty log once.
//
//	negmined -snapshot-dir ./snaps
//	    replica mode: serve the newest .nsnap generation from a snapshot
//	    store via mmap — no taxonomy or data files needed (snapshots embed
//	    the dictionary and ancestor chains). With -watch the daemon polls
//	    the store manifest and swaps in new generations as a producer
//	    writes them.
//
// -snapshot-dir also composes with every source mode: the daemon boots
// from the newest stored generation when one validates (an mmap instead of
// a mine), falls back to the source when the store is empty or corrupt,
// and persists every successful re-mine/refresh as a new generation
// (disable with -snapshot-save=false). A torn or corrupted snapshot is
// rejected by checksum/structural validation and the previous generation
// keeps serving.
//
// Endpoints:
//
//	GET  /rules?item=NAME[&minri=F][&limit=N]  rules mentioning NAME or a
//	                                           taxonomy ancestor of it
//	POST /score {"basket":[...], "minRI":F}    negative rules the basket
//	                                           triggers (what this customer
//	                                           is unlikely to also buy)
//	GET  /healthz                              liveness + snapshot info
//	GET  /metrics                              request counts, latency
//	                                           histograms, reload state
//	POST /reload[?wait=1]                      rebuild + swap the snapshot
//	POST /ingest {"baskets":[[...],...]}       append transactions durably
//	                                           (streaming mode only)
//
// Flags:
//
//	-addr host:port   listen address (default :8377)
//	-report file      serve this report JSON (negmine -format json output)
//	-data file        transactions: basket text or .nmtx binary (mining mode)
//	-tax file         taxonomy: "parent child" edges (required)
//	-minsup/-minri    mining thresholds (mining mode)
//	-gen/-alg/-parallel/-backend/-maxk  mining pipeline knobs, as in negmine
//	-watch            poll the source file and reload when it settles
//	-poll d           watch interval (default 2s)
//	-read-timeout/-write-timeout/-idle-timeout  http.Server limits
//	-request-timeout  per-request handler deadline (0 = none)
//	-drain d          graceful-shutdown drain budget (default 10s)
//	-max-concurrent n adaptive concurrency ceiling; enables admission control
//	-max-queue n      bounded admission queue (requires -max-concurrent)
//	-max-rps f        per-endpoint token-bucket rate limit
//	-max-body size    POST body bound (default 1MiB; "off" disables)
//	-cache n          hot-item query cache entries (default 4096; -1 disables)
//	-mem-budget size  re-mining memory budget (default auto: 80% of the
//	                  GOMEMLIMIT/cgroup limit; "off" disables)
//	-ingest-dir dir   segment-log directory; enables streaming mode
//	-remine-every d   re-mine whenever pending data is this old (streaming)
//	-remine-txns n    re-mine after n pending transactions (streaming)
//	-snapshot-dir d   .nsnap store: mmap boot, persist refreshes; alone =
//	                  replica mode
//	-snapshot-save    persist refreshes as new generations (default true)
//	-snapshot-keep n  generations retained by store GC (default 4, 0 = all)
//	-node-id s        cluster node identity, echoed in /healthz, /metrics and
//	                  the X-Negmine-Node response header (default: the
//	                  advertised host:port)
//	-shard k/n        serve shard k of an n-wide cluster: only rules whose
//	                  first antecedent item hashes to shard k are indexed
//	-cluster-join URL register with a negrouter and heartbeat shard id,
//	                  snapshot generation and load state
//	-advertise a      host:port the router should dial (default: the listen
//	                  address, wildcard hosts rewritten to 127.0.0.1)
//	-heartbeat d      cluster heartbeat interval (default 1s)
//	-ha-role r        high-availability ingest role: primary or standby
//	                  (streaming mode; requires -seglog-store)
//	-seglog-store d   shared artifact store the HA pair replicates sealed
//	                  segments (and fencing epochs) through
//	-ha-peer URL      standby: the primary's base URL to tail
//	-ha-lease d       standby failure-detector lease; expiry promotes
//	                  (default 3s)
//	-ha-ack-timeout d primary: max wait for the standby's replication ack
//	                  before answering 503 (default 2s)
//	-dedup-window n   ingest idempotency window entries (default 4096;
//	                  streaming mode, 0 disables)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get up to -drain to finish, and the process exits 0. A
// second signal aborts the drain. Invalid flag combinations exit 2 with
// usage; runtime failures exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"negmine"
	"negmine/internal/artifact"
	"negmine/internal/govern"
	"negmine/internal/serve"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "negmined:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2) // conventional usage-error status
		}
		os.Exit(1)
	}
}

// usageError marks a flag-validation failure: the flags were parseable but
// their combination is invalid. main exits 2 for these (usage printed)
// instead of the generic 1.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// haConfig carries the parsed HA flags; the controller itself is built in
// run(), after the node identity is known.
type haConfig struct {
	role       string
	storeDir   string
	peer       string
	lease      time.Duration
	ackTimeout time.Duration
}

// usageErrf prints the flag set's usage and returns a usageError.
func usageErrf(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return &usageError{fmt.Errorf(format, args...)}
}

// config is everything run needs after flag parsing.
type config struct {
	addr     string
	watch    bool
	poll     time.Duration
	source   string // the file -watch polls
	loadFunc serve.LoadFunc

	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	reqTimeout   time.Duration
	drain        time.Duration

	gov     *govern.Controller // admission control (nil = admit everything)
	maxBody int64              // POST body bound (0 = serve default, <0 = off)

	ingest      *ingestController // streaming mode (nil = file modes)
	remineEvery time.Duration     // periodic re-mine trigger (streaming)
	ha          *haConfig         // HA pair wiring (nil = solo)

	// Cluster membership (zero values = standalone daemon).
	spec      shardSpec // -shard assignment
	join      string    // -cluster-join router base URL ("" = no cluster)
	nodeID    string    // -node-id ("" = default to advertised addr)
	advertise string    // -advertise override ("" = derive from listener)
	heartbeat time.Duration
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bind before the (possibly slow) initial load so the node identity can
	// default to the real listen address — with -addr :0 the port isn't
	// known until now.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	advertise := advertiseAddr(ln.Addr().String(), cfg.advertise)
	nodeID := cfg.nodeID
	if nodeID == "" {
		nodeID = advertise
	}

	opts := []serve.Option{
		serve.WithRequestTimeout(cfg.reqTimeout),
		serve.WithGovernor(cfg.gov),
		serve.WithMaxBodyBytes(cfg.maxBody),
		serve.WithNodeID(nodeID),
	}
	if cfg.ingest != nil {
		defer cfg.ingest.Close()
		opts = append(opts, serve.WithIngest(cfg.ingest))
	}
	var ha *haController
	if cfg.ha != nil {
		store, err := artifact.OpenFS(cfg.ha.storeDir, 0)
		if err != nil {
			return fmt.Errorf("opening seglog store %s: %w", cfg.ha.storeDir, err)
		}
		// The boot-time fence reconciliation happens here, synchronously:
		// a deposed primary comes up fenced before the listener serves a
		// single /ingest.
		ha, err = newHAController(haParams{
			log:        cfg.ingest.log,
			store:      store,
			node:       nodeID,
			role:       cfg.ha.role,
			peer:       cfg.ha.peer,
			leaseTTL:   cfg.ha.lease,
			ackTimeout: cfg.ha.ackTimeout,
			ingest:     cfg.ingest,
			logf: func(format string, args ...any) {
				fmt.Fprintf(out, "negmined: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		cfg.ingest.ha = ha
		opts = append(opts,
			serve.WithAuxHandler("/seglog/tail", ha.tailHandler()),
			serve.WithAuxHandler("/ha/promote", ha.promoteHandler(ctx)),
		)
	}
	srv, err := serve.NewServer(ctx, cfg.loadFunc, opts...)
	if err != nil {
		return err
	}
	if cfg.ingest != nil {
		cfg.ingest.attach(srv)
		if cfg.remineEvery > 0 {
			go cfg.ingest.remineLoop(ctx, cfg.remineEvery)
		}
	}
	if ha != nil {
		ha.start(ctx)
		fmt.Fprintf(out, "negmined: ha %s (store %s, epoch %d)\n",
			ha.currentRole(), cfg.ha.storeDir, cfg.ingest.log.Epoch())
	}
	if cfg.watch {
		go srv.WatchWith(ctx, cfg.source, serve.WatchConfig{Interval: cfg.poll})
	}
	if cfg.join != "" {
		roleFn := func() (string, int) { return "replica", 0 }
		if cfg.ingest != nil {
			roleFn = cfg.ingest.RoleLag
		}
		member := &clusterMember{
			join:   cfg.join,
			node:   nodeID,
			addr:   advertise,
			spec:   cfg.spec,
			every:  cfg.heartbeat,
			roleFn: roleFn,
			logf: func(format string, args ...any) {
				fmt.Fprintf(out, "negmined: "+format+"\n", args...)
			},
		}
		go member.run(ctx, srv)
		fmt.Fprintf(out, "negmined: joined cluster via %s as %s (shard %d/%d)\n",
			cfg.join, nodeID, cfg.spec.shard, cfg.spec.shards)
	}
	snap := srv.Snapshot()
	if info := snap.Info(); info.SourceKind != "" {
		fmt.Fprintf(out, "negmined: snapshot generation %d via %s in %.3fs\n",
			info.Generation, info.SourceKind, info.BuildSeconds)
	}
	fmt.Fprintf(out, "negmined: serving %d rules (source %s) on http://%s\n",
		snap.Len(), cfg.source, ln.Addr())

	hs := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  cfg.idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop listening, let in-flight requests drain.
	// Restoring default signal handling first means a second SIGINT/SIGTERM
	// kills the process instead of being swallowed mid-drain.
	stop()
	fmt.Fprintf(out, "negmined: signal received, draining for up to %v\n", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "negmined: drained, bye")
	return nil
}

// parseFlags builds the daemon config, including the LoadFunc that /reload
// re-invokes. Split from run so tests can drive the handler without a
// listening socket.
func parseFlags(args []string, out io.Writer) (*config, error) {
	fs := flag.NewFlagSet("negmined", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", ":8377", "listen address")
		repPath  = fs.String("report", "", "serve this report JSON (the negmine -format json output)")
		dataPath = fs.String("data", "", "mine this transaction file (basket text or .nmtx binary)")
		taxPath  = fs.String("tax", "", "taxonomy file (parent child edges); required")
		minSup   = fs.Float64("minsup", 0.02, "minimum relative support (mining mode)")
		minRI    = fs.Float64("minri", 0.5, "minimum rule interest (mining mode)")
		genName  = fs.String("gen", "cumulate", "stage-1 algorithm: basic, cumulate or estmerge")
		algName  = fs.String("alg", "better", "negative algorithm: better or naive")
		parallel = fs.Int("parallel", 1, "counting workers (mining mode)")
		backend  = fs.String("backend", "auto", "counting backend: auto, hashtree or bitmap")
		maxK     = fs.Int("maxk", 0, "cap large-itemset size (0 = unlimited)")
		watch    = fs.Bool("watch", false, "poll the source file and reload when it settles")
		poll     = fs.Duration("poll", 2*time.Second, "poll interval for -watch")
		readTO   = fs.Duration("read-timeout", 10*time.Second, "http.Server read timeout (0 = none)")
		writeTO  = fs.Duration("write-timeout", 30*time.Second, "http.Server write timeout (0 = none)")
		idleTO   = fs.Duration("idle-timeout", 2*time.Minute, "http.Server idle-connection timeout (0 = none)")
		reqTO    = fs.Duration("request-timeout", 0, "per-request handler deadline (0 = none)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")

		maxRPS    = fs.Float64("max-rps", 0, "per-endpoint token-bucket rate limit, requests/second (0 = unlimited)")
		maxConc   = fs.Int("max-concurrent", 0, "adaptive concurrency ceiling; enables admission control (0 = off unless -max-rps is set)")
		maxQueue  = fs.Int("max-queue", 0, "bounded admission-queue depth; requires -max-concurrent (0 = 4x -max-concurrent)")
		maxBody   = fs.String("max-body", "", "POST body size bound, e.g. 1MiB (empty = 1MiB, off = unbounded)")
		cache     = fs.Int("cache", 0, "hot-item query cache entries (0 = default 4096, negative = disabled)")
		memBudget = fs.String("mem-budget", "auto", "re-mining memory budget, e.g. 2GiB (auto = 80% of GOMEMLIMIT/cgroup limit, off = unlimited)")

		ingestDir   = fs.String("ingest-dir", "", "segment-log directory; enables streaming mode with POST /ingest")
		remineEvery = fs.Duration("remine-every", 0, "re-mine whenever pending ingested data is this old (0 = off; streaming mode)")
		remineTxns  = fs.Int("remine-txns", 0, "re-mine after this many pending ingested transactions (0 = off; streaming mode)")

		snapDir  = fs.String("snapshot-dir", "", "snapshot store directory: boot from the newest .nsnap via mmap, persist refreshes; alone (no source) the daemon is a read-only replica of the store")
		snapSave = fs.Bool("snapshot-save", true, "persist every successful re-mine/refresh as a new snapshot generation (requires -snapshot-dir)")
		snapKeep = fs.Int("snapshot-keep", 4, "snapshot generations retained in the store (0 = all; requires -snapshot-dir)")

		haRole      = fs.String("ha-role", "", "high-availability ingest role: primary or standby (requires -ingest-dir and -seglog-store)")
		seglogStore = fs.String("seglog-store", "", "shared artifact store directory the HA pair replicates the segment log through")
		haPeer      = fs.String("ha-peer", "", "standby: the primary's base URL to tail (e.g. http://127.0.0.1:8377)")
		haLease     = fs.Duration("ha-lease", 3*time.Second, "standby failure-detector lease; expiry triggers promotion")
		haAckTO     = fs.Duration("ha-ack-timeout", 2*time.Second, "primary: max wait for the standby replication ack before answering 503")
		dedupWindow = fs.Int("dedup-window", 4096, "ingest idempotency window entries (streaming mode; 0 disables)")

		nodeID      = fs.String("node-id", "", "cluster node identity (default: the advertised host:port)")
		shardFlag   = fs.String("shard", "", "serve shard k of an n-wide cluster, as k/n (e.g. 0/3)")
		clusterJoin = fs.String("cluster-join", "", "negrouter base URL to register with and heartbeat (e.g. http://127.0.0.1:8378)")
		advertise   = fs.String("advertise", "", "host:port the router should dial (default: the listen address)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "cluster heartbeat interval (requires -cluster-join)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *snapDir == "" {
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["snapshot-save"] || set["snapshot-keep"] {
			return nil, usageErrf(fs, "-snapshot-save/-snapshot-keep require -snapshot-dir")
		}
	}
	if *snapKeep < 0 {
		return nil, usageErrf(fs, "-snapshot-keep = %d, want ≥ 0", *snapKeep)
	}
	// Replica mode: a snapshot store and no rule source. The daemon serves
	// (and with -watch, follows) whatever a producer writes into the store;
	// no taxonomy file is needed because snapshots embed the item dictionary
	// and ancestor chains.
	replica := *snapDir != "" && *repPath == "" && *dataPath == "" && *ingestDir == ""
	if *taxPath == "" && !replica {
		return nil, usageErrf(fs, "-tax is required")
	}
	if *ingestDir != "" {
		// Streaming mode: -data is an optional one-time seed, -report makes
		// no sense (there is nothing to re-mine a report from), and -watch
		// would poll a directory our own appends keep touching.
		if *repPath != "" {
			return nil, usageErrf(fs, "-ingest-dir and -report are mutually exclusive")
		}
		if *watch {
			return nil, usageErrf(fs, "-watch cannot be combined with -ingest-dir (use -remine-every)")
		}
		if *remineEvery < 0 {
			return nil, usageErrf(fs, "-remine-every = %v, want ≥ 0", *remineEvery)
		}
		if *remineTxns < 0 {
			return nil, usageErrf(fs, "-remine-txns = %d, want ≥ 0", *remineTxns)
		}
		if *dedupWindow < 0 {
			return nil, usageErrf(fs, "-dedup-window = %d, want ≥ 0", *dedupWindow)
		}
		switch *haRole {
		case "":
			if *seglogStore != "" || *haPeer != "" {
				return nil, usageErrf(fs, "-seglog-store/-ha-peer require -ha-role")
			}
		case haRolePrimary, haRoleStandby:
			if *seglogStore == "" {
				return nil, usageErrf(fs, "-ha-role requires -seglog-store (the pair's shared replication store)")
			}
			if *haLease <= 0 {
				return nil, usageErrf(fs, "-ha-lease = %v, want > 0", *haLease)
			}
			if *haAckTO <= 0 {
				return nil, usageErrf(fs, "-ha-ack-timeout = %v, want > 0", *haAckTO)
			}
			if *haRole == haRoleStandby {
				if !strings.HasPrefix(*haPeer, "http://") && !strings.HasPrefix(*haPeer, "https://") {
					return nil, usageErrf(fs, "-ha-role standby requires -ha-peer, an http(s) URL for the primary")
				}
				if *dataPath != "" {
					return nil, usageErrf(fs, "-ha-role standby cannot seed from -data (its log is filled by replication)")
				}
			}
		default:
			return nil, usageErrf(fs, "unknown -ha-role %q (want primary or standby)", *haRole)
		}
	} else {
		if *remineEvery != 0 || *remineTxns != 0 {
			return nil, usageErrf(fs, "-remine-every/-remine-txns require -ingest-dir")
		}
		if *haRole != "" || *seglogStore != "" || *haPeer != "" {
			return nil, usageErrf(fs, "-ha-role/-seglog-store/-ha-peer require -ingest-dir (streaming mode)")
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["dedup-window"] || set["ha-lease"] || set["ha-ack-timeout"] {
			return nil, usageErrf(fs, "-dedup-window/-ha-lease/-ha-ack-timeout require -ingest-dir (streaming mode)")
		}
		if !replica && (*repPath == "") == (*dataPath == "") {
			return nil, usageErrf(fs, "exactly one of -report or -data is required (or -snapshot-dir alone for replica mode)")
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"-poll", *poll}, {"-read-timeout", *readTO}, {"-write-timeout", *writeTO},
		{"-idle-timeout", *idleTO}, {"-request-timeout", *reqTO}, {"-drain", *drain},
	} {
		if d.v < 0 {
			return nil, usageErrf(fs, "%s = %v, want ≥ 0", d.name, d.v)
		}
	}
	if *maxRPS < 0 {
		return nil, usageErrf(fs, "-max-rps = %v, want ≥ 0", *maxRPS)
	}
	if *maxConc < 0 {
		return nil, usageErrf(fs, "-max-concurrent = %d, want ≥ 0", *maxConc)
	}
	if *maxQueue < 0 {
		return nil, usageErrf(fs, "-max-queue = %d, want ≥ 0", *maxQueue)
	}
	if *maxQueue > 0 && *maxConc == 0 {
		return nil, usageErrf(fs, "-max-queue requires -max-concurrent (a queue needs a concurrency ceiling to drain into)")
	}
	var spec shardSpec
	if *shardFlag != "" {
		s, err := parseShardSpec(*shardFlag)
		if err != nil {
			return nil, usageErrf(fs, "-shard: %v", err)
		}
		spec = s
	}
	if *clusterJoin != "" {
		if !strings.HasPrefix(*clusterJoin, "http://") && !strings.HasPrefix(*clusterJoin, "https://") {
			return nil, usageErrf(fs, "-cluster-join %q: want an http(s) URL", *clusterJoin)
		}
		if *heartbeat <= 0 {
			return nil, usageErrf(fs, "-heartbeat = %v, want > 0", *heartbeat)
		}
		if !spec.active() {
			spec = shardSpec{shard: 0, shards: 1} // single-shard cluster
		}
	} else {
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["heartbeat"] || set["advertise"] {
			return nil, usageErrf(fs, "-heartbeat/-advertise require -cluster-join")
		}
	}

	cfg := &config{
		addr: *addr, watch: *watch, poll: *poll,
		readTimeout: *readTO, writeTimeout: *writeTO, idleTimeout: *idleTO,
		reqTimeout: *reqTO, drain: *drain,
		spec: spec, join: strings.TrimRight(*clusterJoin, "/"),
		nodeID: *nodeID, advertise: *advertise, heartbeat: *heartbeat,
	}
	keep := spec.keep()
	if *maxConc > 0 || *maxRPS > 0 {
		cfg.gov = govern.NewController(govern.Config{
			MaxConcurrent: *maxConc,
			MaxQueue:      *maxQueue,
			MaxRPS:        *maxRPS,
		})
	}
	switch strings.ToLower(*maxBody) {
	case "":
		// serve.DefaultMaxBodyBytes
	case "off", "none":
		cfg.maxBody = -1
	default:
		n, err := govern.ParseBytes(*maxBody)
		if err != nil {
			return nil, usageErrf(fs, "-max-body: %v", err)
		}
		cfg.maxBody = n
	}
	var mem *govern.Budget
	switch strings.ToLower(*memBudget) {
	case "auto":
		mem = govern.DefaultBudget()
	case "off", "none", "0":
		// unlimited, no ledger
	default:
		n, err := govern.ParseBytes(*memBudget)
		if err != nil {
			return nil, usageErrf(fs, "-mem-budget: %v", err)
		}
		if n > 0 {
			mem = govern.NewBudget(n)
		}
	}

	// withSnapshots layers the artifact store over the configured loader:
	// boot-from-mmap with source fallback, persist-on-refresh.
	withSnapshots := func(cfg *config) (*config, error) {
		if *snapDir == "" {
			return cfg, nil
		}
		store, err := artifact.OpenFS(*snapDir, *snapKeep)
		if err != nil {
			return nil, fmt.Errorf("opening snapshot store %s: %w", *snapDir, err)
		}
		sc := &snapController{store: store, inner: cfg.loadFunc, save: *snapSave, cache: *cache, out: out}
		cfg.loadFunc = sc.load
		return cfg, nil
	}
	// withShard stamps every loaded snapshot with the shard label. It wraps
	// the outermost loader — after the snapshot layer — because the label is
	// in-memory only (.nsnap files don't persist it), so an mmap-booted
	// generation needs re-stamping too.
	withShard := func(cfg *config, err error) (*config, error) {
		if err != nil || !spec.active() {
			return cfg, err
		}
		inner := cfg.loadFunc
		cfg.loadFunc = func(ctx context.Context) (*serve.Snapshot, error) {
			snap, err := inner(ctx)
			if snap != nil {
				snap.SetShard(spec.shard, spec.shards)
			}
			return snap, err
		}
		return cfg, nil
	}
	if replica {
		store, err := artifact.OpenFS(*snapDir, *snapKeep)
		if err != nil {
			return nil, fmt.Errorf("opening snapshot store %s: %w", *snapDir, err)
		}
		sc := &snapController{store: store, cache: *cache, out: out}
		cfg.source = store.ManifestPath() // what -watch polls: changes on every Put
		cfg.loadFunc = sc.load
		return withShard(cfg, nil)
	}

	if *repPath != "" {
		cfg.source = *repPath
		cfg.loadFunc = reportLoader(*repPath, *taxPath, *cache, keep)
		return withShard(withSnapshots(cfg))
	}

	opt := negmine.NegativeOptions{MinSupport: *minSup, MinRI: *minRI}
	switch strings.ToLower(*algName) {
	case "better", "improved":
		opt.Algorithm = negmine.Improved
	case "naive":
		opt.Algorithm = negmine.Naive
	default:
		return nil, usageErrf(fs, "unknown -alg %q (want better or naive)", *algName)
	}
	switch strings.ToLower(*genName) {
	case "basic":
		opt.Gen.Algorithm = negmine.Basic
	case "cumulate":
		opt.Gen.Algorithm = negmine.Cumulate
	case "estmerge":
		opt.Gen.Algorithm = negmine.EstMerge
	default:
		return nil, usageErrf(fs, "unknown -gen %q (want basic, cumulate or estmerge)", *genName)
	}
	opt.Gen.MaxK = *maxK
	opt.Count.Parallelism = *parallel
	opt.Gen.Count.Parallelism = *parallel
	cb, err := negmine.ParseCountBackend(*backend)
	if err != nil {
		return nil, usageErrf(fs, "%v", err)
	}
	opt.Count.Backend = cb
	opt.Gen.Count.Backend = cb
	opt.Count.Mem = mem
	opt.Gen.Count.Mem = mem

	if *ingestDir != "" {
		ctrl, err := newIngestController(*ingestDir, *dataPath, *taxPath, opt, *remineTxns, *cache, *dedupWindow, keep)
		if err != nil {
			return nil, err
		}
		cfg.ingest = ctrl
		cfg.remineEvery = *remineEvery
		cfg.source = *ingestDir
		cfg.loadFunc = ctrl.load
		if *haRole != "" {
			cfg.ha = &haConfig{
				role:       *haRole,
				storeDir:   *seglogStore,
				peer:       strings.TrimRight(*haPeer, "/"),
				lease:      *haLease,
				ackTimeout: *haAckTO,
			}
		}
		return withShard(withSnapshots(cfg))
	}

	cfg.source = *dataPath
	cfg.loadFunc = mineLoader(*dataPath, *taxPath, opt, *cache, keep)
	return withShard(withSnapshots(cfg))
}

// reportLoader re-reads a report JSON file on every (re)load. The taxonomy
// is also re-read so a snapshot always pairs the report with the hierarchy
// it was mined under. keep, when non-nil, is the cluster shard predicate:
// only rules it accepts are indexed.
func reportLoader(repPath, taxPath string, cacheSize int, keep func(ante, cons []string) bool) serve.LoadFunc {
	return func(ctx context.Context) (*serve.Snapshot, error) {
		tax, err := loadTaxonomy(taxPath)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(repPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rep, err := negmine.ReadNegativeReport(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", repPath, err)
		}
		st := negmine.RuleStoreFromReport(rep)
		meta := serve.Meta{
			Source:     "report " + repPath,
			MinSupport: rep.MinSupport,
			MinRI:      rep.MinRI,
			CacheSize:  cacheSize,
			Keep:       keep,
		}
		snap := serve.BuildSnapshot(st, tax, meta)
		snap.SetProvenance(0, "json")
		return snap, nil
	}
}

// mineLoader runs the full mining pipeline on every (re)load — hot
// re-mining. Data and taxonomy are re-read each time so dropping a fresh
// file in place plus /reload (or -watch) picks it up.
func mineLoader(dataPath, taxPath string, opt negmine.NegativeOptions, cacheSize int, keep func(ante, cons []string) bool) serve.LoadFunc {
	return func(ctx context.Context) (*serve.Snapshot, error) {
		tax, err := loadTaxonomy(taxPath)
		if err != nil {
			return nil, err
		}
		db, err := loadData(dataPath, tax.Dictionary())
		if err != nil {
			return nil, err
		}
		rep, err := negmine.MineNegativeReport(db, tax, opt)
		if err != nil {
			return nil, fmt.Errorf("mining %s: %w", dataPath, err)
		}
		st := negmine.RuleStoreFromReport(rep)
		meta := serve.Meta{
			Source:     "mined " + dataPath,
			MinSupport: opt.MinSupport,
			MinRI:      opt.MinRI,
			CacheSize:  cacheSize,
			Keep:       keep,
		}
		snap := serve.BuildSnapshot(st, tax, meta)
		snap.SetProvenance(0, "mined")
		return snap, nil
	}
}

func loadTaxonomy(path string) (*negmine.Taxonomy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tax, err := negmine.ParseTaxonomy(f)
	if err != nil {
		return nil, fmt.Errorf("parsing taxonomy %s: %w", path, err)
	}
	return tax, nil
}

func loadData(path string, dict *negmine.Dictionary) (negmine.DB, error) {
	if strings.HasSuffix(path, ".nmtx") || strings.HasSuffix(path, ".nmtx.gz") {
		return negmine.OpenDB(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return negmine.ReadBaskets(f, dict)
}
