package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"negmine/internal/artifact"
	"negmine/internal/cluster"
	"negmine/internal/fault"
	"negmine/internal/item"
	"negmine/internal/seglog"
	"negmine/internal/serve"
	"negmine/internal/txdb"
)

// High-availability ingest: a primary/standby pair of negmined daemons
// replicating one logical segment log.
//
//   - Sealed segments travel through a shared artifact store (-seglog-store):
//     the primary's Shipper publishes them, the standby's Follower adopts
//     them in TID order.
//   - The open tail travels over HTTP: the standby long-polls the primary's
//     GET /seglog/tail and replays transactions (and dedup-window entries)
//     with their TIDs preserved, sealing at the primary's seal boundaries.
//   - Every tail poll renews the standby's lease on the primary; when the
//     lease expires (or POST /ha/promote is called) the standby drains the
//     store one last time, bumps the fencing epoch past everything it has
//     seen, publishes the new epoch in the store, and starts accepting
//     writes as the new primary.
//   - A deposed primary discovers the higher epoch on its next store scan
//     (or at restart), durably advances its log's epoch, and from then on
//     its own appends — which still carry the old token — are rejected by
//     the log with ErrFenced and counted in /metrics.
//
// Zero acknowledged-write loss rests on the replication ack: while a live
// follower is attached, the primary answers /ingest only after the standby
// has reported the batch durable (bounded by -ha-ack-timeout, then 503 and
// the client retries — idempotently, thanks to the dedup window). With no
// live follower the primary degrades to solo durability and says so in its
// role metrics.

// HA ingest roles, advertised in heartbeats, /healthz and /metrics.
const (
	haRolePrimary = "primary"
	haRoleStandby = "standby"
	haRoleFenced  = "fenced"
)

// haShipEvery is the primary's store replication (and fencing-discovery)
// interval, and haTailWait the standby's long-poll hold.
const (
	haShipEvery = 200 * time.Millisecond
	haTailWait  = 500 * time.Millisecond
	// haTailCap bounds one tail response; More tells the follower to poll
	// again immediately.
	haTailCap = 2048
)

// haParams collects the wiring for newHAController.
type haParams struct {
	log        *seglog.Log
	store      artifact.Store
	node       string
	role       string // haRolePrimary or haRoleStandby (the configured role)
	peer       string // standby: primary base URL, no trailing slash
	leaseTTL   time.Duration
	ackTimeout time.Duration
	ingest     *ingestController
	logf       func(format string, args ...any)
}

// haController runs one node's side of the primary/standby protocol.
type haController struct {
	log        *seglog.Log
	store      artifact.Store
	node       string
	peer       string
	leaseTTL   time.Duration
	ackTimeout time.Duration
	ingest     *ingestController
	logf       func(format string, args ...any)
	client     *http.Client

	mu           sync.Mutex
	role         string
	token        int64 // fencing token held as writer (primary/fenced roles)
	maxEpochSeen int64 // highest epoch observed in store or tail responses
	lag          int   // standby: sealed-segment lag behind the primary

	// Primary-side replication-ack state: the freshest durable TID any
	// follower reported, when it last reported, and a broadcast channel
	// closed each time the watermark advances.
	standbyDurable int64
	standbySeen    time.Time
	ackCh          chan struct{}

	shipper  *seglog.Shipper  // primary only
	follower *seglog.Follower // standby only
	lease    *cluster.Lease   // standby only
}

// newHAController reconciles the node's boot-time epoch against the
// replication store and returns the controller with its initial role. A
// configured primary that finds a higher epoch in the store was deposed
// while it was down: it comes back fenced, never primary.
func newHAController(p haParams) (*haController, error) {
	storeEpoch, err := seglog.StoreEpoch(p.store)
	if err != nil {
		return nil, fmt.Errorf("ha: reading store epoch: %w", err)
	}
	h := &haController{
		log:        p.log,
		store:      p.store,
		node:       p.node,
		peer:       p.peer,
		leaseTTL:   p.leaseTTL,
		ackTimeout: p.ackTimeout,
		ingest:     p.ingest,
		logf:       p.logf,
		client:     &http.Client{Timeout: haTailWait + 2*time.Second},
	}
	h.maxEpochSeen = storeEpoch
	switch p.role {
	case haRolePrimary:
		h.token = h.log.Epoch()
		if storeEpoch > h.token {
			// Deposed before this restart. Advance the log durably so even a
			// crash right here leaves the fence in place; the stale token is
			// kept so late appends are rejected (and counted) by the log.
			if err := h.log.AdvanceEpoch(storeEpoch); err != nil {
				return nil, err
			}
			h.role = haRoleFenced
			h.logf("ha: store epoch %d is above ours (%d): starting fenced", storeEpoch, h.token)
		} else {
			h.role = haRolePrimary
			h.shipper = &seglog.Shipper{Log: h.log, Store: h.store, Node: h.node, Epoch: h.token}
		}
	case haRoleStandby:
		if storeEpoch > h.log.Epoch() {
			if err := h.log.AdvanceEpoch(storeEpoch); err != nil {
				return nil, err
			}
		}
		h.role = haRoleStandby
		h.follower = &seglog.Follower{Log: h.log, Store: h.store}
	default:
		return nil, fmt.Errorf("ha: unknown role %q", p.role)
	}
	return h, nil
}

// start launches the role's background loop. Called once, after the server
// is constructed but before (or concurrently with) the listener accepting
// traffic — the boot-time fence decision already happened in the
// constructor, so an early /ingest cannot slip past a restart-discovered
// demotion.
func (h *haController) start(ctx context.Context) {
	switch h.currentRole() {
	case haRolePrimary:
		go h.shipLoop(ctx)
	case haRoleStandby:
		h.lease = cluster.NewLease(h.leaseTTL, nil)
		go h.followLoop(ctx)
	case haRoleFenced:
		// Nothing to run: the node serves reads and rejects writes.
	}
}

func (h *haController) currentRole() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.role
}

// roleLag reports the node's role and replication lag for heartbeats,
// /healthz and /metrics.
func (h *haController) roleLag() (string, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.role, h.lag
}

// ingestBatch is the HA write path: standbys refuse outright; primaries
// (and deposed primaries that have not noticed yet) append with their held
// token — the log is the fencing authority, so a stale token is rejected
// and counted there, never silently applied. A fresh append is acknowledged
// only after the replication ack (or its timeout policy) clears it.
func (h *haController) ingestBatch(ctx context.Context, sets []item.Itemset, key string, seq uint64) (seglog.AppendResult, error) {
	h.mu.Lock()
	role, token := h.role, h.token
	h.mu.Unlock()
	if role == haRoleStandby {
		return seglog.AppendResult{}, fmt.Errorf("%w (standby; tailing %s)", serve.ErrIngestNotPrimary, h.peer)
	}
	res, err := h.log.AppendBatch(seglog.Batch{Baskets: sets, Epoch: token, Key: key, Seq: seq})
	if err != nil {
		return res, err
	}
	if !res.Duplicate {
		if err := h.waitReplicated(ctx, res.Last); err != nil {
			// The batch is durable locally but not confirmed on the standby:
			// refuse the ack. The client's keyed retry is answered from the
			// dedup window once replication catches up.
			return res, err
		}
	}
	return res, nil
}

// waitReplicated blocks until a follower has reported TIDs through last
// durable, the ack timeout passes, or the request dies. With no recently
// seen follower the primary is in degraded solo-durability mode and local
// fsync is the whole guarantee — it returns immediately.
func (h *haController) waitReplicated(ctx context.Context, last int64) error {
	deadline := time.NewTimer(h.ackTimeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		if h.standbyDurable >= last {
			h.mu.Unlock()
			return nil
		}
		if h.standbySeen.IsZero() || time.Since(h.standbySeen) > 2*h.leaseTTL {
			h.mu.Unlock()
			return nil // no live follower: solo durability
		}
		if h.ackCh == nil {
			h.ackCh = make(chan struct{})
		}
		ch := h.ackCh
		h.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("%w: standby ack not received within %v", serve.ErrIngestUnavailable, h.ackTimeout)
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", serve.ErrIngestUnavailable, ctx.Err())
		}
	}
}

// noteFollower records a follower's tail poll: liveness for the ack policy
// and its durable watermark for waiters.
func (h *haController) noteFollower(node string, durable int64) {
	h.mu.Lock()
	h.standbySeen = time.Now()
	if durable > h.standbyDurable {
		h.standbyDurable = durable
		if h.ackCh != nil {
			close(h.ackCh)
			h.ackCh = nil
		}
	}
	h.mu.Unlock()
}

// shipLoop is the primary's replication pump: every tick it scans the store
// (discovering its own demotion, if any) and publishes newly sealed
// segments. On fencing it flips the role and stops — the log's epoch is
// already advanced, so in-flight appends fail from that instant.
func (h *haController) shipLoop(ctx context.Context) {
	t := time.NewTicker(haShipEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		h.mu.Lock()
		sh, role := h.shipper, h.role
		h.mu.Unlock()
		if role != haRolePrimary || sh == nil {
			return
		}
		if _, err := sh.Sync(); err != nil {
			if errors.Is(err, seglog.ErrFenced) {
				h.mu.Lock()
				h.role = haRoleFenced
				h.mu.Unlock()
				h.logf("ha: deposed: %v", err)
				return
			}
			h.logf("ha: ship: %v", err)
		}
	}
}

// followLoop is the standby's catch-up pump: adopt sealed segments from the
// store, tail the primary's open segment, renew the lease on every
// successful poll, and promote when the lease expires.
func (h *haController) followLoop(ctx context.Context) {
	peerDown := false
	for ctx.Err() == nil {
		if h.currentRole() != haRoleStandby {
			return
		}
		before := h.log.NextTID()
		if _, maxE, err := h.follower.Sync(); err != nil {
			h.logf("ha: store sync: %v", err)
		} else {
			h.observeEpoch(maxE)
		}
		if n := h.log.NextTID() - before; n > 0 {
			h.ingest.noteReplicated(n)
		}
		// The long poll paces the loop: it returns quickly with data, after
		// haTailWait without, or with an error when the primary is gone.
		if err := h.pollTail(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			if !peerDown {
				peerDown = true
				h.logf("ha: tail poll failed (primary down?): %v", err)
			}
			time.Sleep(haShipEvery) // don't hot-loop against a dead peer
		} else {
			if peerDown {
				h.logf("ha: tail poll recovered")
			}
			peerDown = false
			h.lease.Renew()
		}
		if h.lease.Expired() {
			if err := h.promote(ctx, fmt.Sprintf("lease expired (%v since last primary contact)", h.lease.SinceRenewal().Round(time.Millisecond))); err != nil {
				h.logf("ha: promotion attempt: %v", err)
				time.Sleep(haShipEvery)
			}
		}
	}
}

func (h *haController) observeEpoch(e int64) {
	h.mu.Lock()
	if e > h.maxEpochSeen {
		h.maxEpochSeen = e
	}
	h.mu.Unlock()
}

// tailTxn is one transaction on the tail wire: item ids are stable across
// the pair because both nodes load the same taxonomy dictionary.
type tailTxn struct {
	TID   int64   `json:"tid"`
	Items []int32 `json:"items"`
}

// tailResponse is the GET /seglog/tail payload.
type tailResponse struct {
	Epoch        int64               `json:"epoch"`
	NextTID      int64               `json:"nextTid"`
	SealedMaxTID int64               `json:"sealedMaxTid"`
	SealedCount  int                 `json:"sealedSegments"`
	Txns         []tailTxn           `json:"txns,omitempty"`
	Dedup        []seglog.DedupEntry `json:"dedup,omitempty"`
	More         bool                `json:"more,omitempty"` // capped: poll again immediately
}

// pollTail performs one tail poll against the primary and applies what it
// returns.
func (h *haController) pollTail(ctx context.Context) error {
	after := h.log.NextTID() - 1
	u := fmt.Sprintf("%s/seglog/tail?after=%d&wait=%d&durable=%d&node=%s",
		h.peer, after, haTailWait.Milliseconds(), after, url.QueryEscape(h.node))
	rctx, cancel := context.WithTimeout(ctx, haTailWait+2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary answered HTTP %d", resp.StatusCode)
	}
	var doc tailResponse
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	return h.applyTail(doc)
}

// applyTail replays one tail response: transactions are appended with their
// TIDs preserved, the log is sealed at the primary's seal boundary (so the
// standby's segmentation tracks the primary's and store-adopted segments
// keep lining up), and replicated dedup entries are installed once their
// data is durable.
func (h *haController) applyTail(doc tailResponse) error {
	next := h.log.NextTID()
	txs := make([]txdb.Transaction, 0, len(doc.Txns))
	for _, t := range doc.Txns {
		if t.TID < next {
			continue // already present (a store adoption raced this poll)
		}
		items := make(item.Itemset, len(t.Items))
		for i, id := range t.Items {
			items[i] = item.Item(id)
		}
		if err := items.Validate(); err != nil {
			return fmt.Errorf("ha: tail txn %d: %w", t.TID, err)
		}
		txs = append(txs, txdb.Transaction{TID: t.TID, Items: items})
	}
	applied := int64(0)
	if len(txs) > 0 {
		cut := len(txs)
		for i, tx := range txs {
			if tx.TID > doc.SealedMaxTID {
				cut = i
				break
			}
		}
		if cut > 0 {
			if _, err := h.log.AppendReplicated(txs[:cut]); err != nil {
				return err
			}
			applied += int64(cut)
			if h.log.NextTID() == doc.SealedMaxTID+1 {
				if err := h.log.Seal(); err != nil {
					return err
				}
			}
		}
		if cut < len(txs) {
			if _, err := h.log.AppendReplicated(txs[cut:]); err != nil {
				return err
			}
			applied += int64(len(txs) - cut)
		}
	}
	if err := h.log.AdoptDedup(doc.Dedup); err != nil {
		return err
	}
	h.observeEpoch(doc.Epoch)
	lag := doc.SealedCount - len(h.log.SealedEntries())
	if lag < 0 {
		lag = 0
	}
	h.mu.Lock()
	h.lag = lag
	h.mu.Unlock()
	if applied > 0 {
		h.ingest.noteReplicated(applied)
	}
	return nil
}

// promote turns the standby into the primary: gate on the cluster.promote
// failpoint, drain the store one final time, durably bump the epoch past
// everything observed, announce it in the store (fencing the old primary),
// and start shipping.
func (h *haController) promote(ctx context.Context, reason string) error {
	if h.currentRole() != haRoleStandby {
		return nil
	}
	if err := fault.Hit(cluster.PointPromote); err != nil {
		return fmt.Errorf("promotion gated: %w", err)
	}
	// Final drain: adopt every sealed segment the old primary managed to
	// publish, so the new timeline starts from everything that could have
	// been acknowledged.
	if _, maxE, err := h.follower.Sync(); err != nil {
		h.logf("ha: final store drain: %v", err)
	} else {
		h.observeEpoch(maxE)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.role != haRoleStandby {
		return nil
	}
	newEpoch := h.maxEpochSeen
	if e := h.log.Epoch(); e > newEpoch {
		newEpoch = e
	}
	newEpoch++
	if err := h.log.AdvanceEpoch(newEpoch); err != nil {
		return err
	}
	if err := seglog.PublishEpoch(h.store, newEpoch, h.node); err != nil {
		return err
	}
	h.token = newEpoch
	h.maxEpochSeen = newEpoch
	h.role = haRolePrimary
	h.lag = 0
	h.shipper = &seglog.Shipper{Log: h.log, Store: h.store, Node: h.node, Epoch: newEpoch}
	go h.shipLoop(ctx)
	h.logf("ha: promoted to primary at epoch %d: %s", newEpoch, reason)
	return nil
}

func haWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// tailHandler serves GET /seglog/tail: the standby's long-poll feed of the
// open segment. Parameters: after (TID cursor, required), wait (long-poll
// hold in ms, 0..5000), node + durable (the follower's identity and durable
// watermark, feeding the primary's replication ack).
func (h *haController) tailHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			haWriteJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET /seglog/tail?after=TID"})
			return
		}
		q := r.URL.Query()
		after, err := strconv.ParseInt(q.Get("after"), 10, 64)
		if err != nil || after < 0 {
			haWriteJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad after %q", q.Get("after"))})
			return
		}
		waitMs := 0
		if v := q.Get("wait"); v != "" {
			waitMs, err = strconv.Atoi(v)
			if err != nil || waitMs < 0 || waitMs > 5000 {
				haWriteJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad wait %q (want 0..5000 ms)", v)})
				return
			}
		}
		if node := q.Get("node"); node != "" {
			durable, _ := strconv.ParseInt(q.Get("durable"), 10, 64)
			h.noteFollower(node, durable)
		}
		// Grab the notify channel BEFORE collecting: an append landing between
		// collect and select still wakes the poll.
		notify := h.log.AppendNotify()
		txns, more := h.collectTail(after)
		if len(txns) == 0 && waitMs > 0 {
			t := time.NewTimer(time.Duration(waitMs) * time.Millisecond)
			select {
			case <-notify:
			case <-t.C:
			case <-r.Context().Done():
			}
			t.Stop()
			txns, more = h.collectTail(after)
		}
		sealed := h.log.SealedEntries()
		var sealedMax int64
		for _, e := range sealed {
			if e.MaxTID > sealedMax {
				sealedMax = e.MaxTID
			}
		}
		haWriteJSON(w, http.StatusOK, tailResponse{
			Epoch:        h.log.Epoch(),
			NextTID:      h.log.NextTID(),
			SealedMaxTID: sealedMax,
			SealedCount:  len(sealed),
			Txns:         txns,
			Dedup:        h.log.DedupEntriesAfter(after),
			More:         more,
		})
	})
}

// errTailFull stops a tail collection at the response cap.
var errTailFull = errors.New("tail response full")

func (h *haController) collectTail(after int64) ([]tailTxn, bool) {
	var out []tailTxn
	more := false
	err := h.log.ScanFrom(after, func(tx txdb.Transaction) error {
		if len(out) >= haTailCap {
			more = true
			return errTailFull
		}
		items := make([]int32, len(tx.Items))
		for i, it := range tx.Items {
			items[i] = int32(it)
		}
		out = append(out, tailTxn{TID: tx.TID, Items: items})
		return nil
	})
	if err != nil && !errors.Is(err, errTailFull) {
		h.logf("ha: tail scan: %v", err)
	}
	return out, more
}

// promoteHandler serves POST /ha/promote: the manual failover trigger
// (`nmtx promote`). A standby promotes immediately; a primary answers 200
// without doing anything; a fenced node answers 409.
func (h *haController) promoteHandler(ctx context.Context) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			haWriteJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use POST /ha/promote"})
			return
		}
		switch h.currentRole() {
		case haRolePrimary:
			haWriteJSON(w, http.StatusOK, map[string]any{"status": "already-primary", "epoch": h.log.Epoch()})
			return
		case haRoleFenced:
			haWriteJSON(w, http.StatusConflict, map[string]string{"error": "node is fenced (a newer primary holds the log)"})
			return
		}
		if err := h.promote(ctx, "manual trigger"); err != nil {
			haWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		if h.currentRole() != haRolePrimary {
			haWriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "promotion did not complete"})
			return
		}
		haWriteJSON(w, http.StatusOK, map[string]any{"status": "promoted", "epoch": h.log.Epoch()})
	})
}
