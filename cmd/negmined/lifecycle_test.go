package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"negmine"
	"negmine/internal/bench"
	"negmine/internal/fault"
	"negmine/internal/serve"
)

// writeExampleFiles mines the paper's worked example and writes the report
// and taxonomy files a daemon can serve.
func writeExampleFiles(t *testing.T) (repPath, taxPath string) {
	t.Helper()
	tax, db, err := bench.PaperExample()
	if err != nil {
		t.Fatalf("PaperExample: %v", err)
	}
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatalf("MineNegative: %v", err)
	}
	dir := t.TempDir()
	repPath = filepath.Join(dir, "rules.json")
	taxPath = filepath.Join(dir, "tax.txt")
	rf, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := negmine.WriteNegativeJSON(rf, res, 0.04, 0.5, tax.Name); err != nil {
		t.Fatalf("WriteNegativeJSON: %v", err)
	}
	rf.Close()
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatalf("taxonomy Write: %v", err)
	}
	tf.Close()
	return repPath, taxPath
}

// syncBuffer is an io.Writer safe for the concurrent run goroutine + test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunDrainsOnSIGTERM boots the real daemon on a random port, puts a
// slow request in flight, sends the process SIGTERM, and verifies the
// request completes (drain) and run returns nil (exit code 0).
func TestRunDrainsOnSIGTERM(t *testing.T) {
	repPath, taxPath := writeExampleFiles(t)
	out := &syncBuffer{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-report", repPath, "-tax", taxPath,
			"-drain", "5s",
		}, out)
	}()

	// Wait for the listen line and pull the bound address from it.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "on http://") {
			addr = strings.TrimSpace(s[strings.Index(s, "on http://")+len("on http://"):])
			addr = strings.Fields(addr)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Make every handler slow so the drain has something to wait for.
	defer fault.Enable(serve.PointHandler, fault.Sleep(300*time.Millisecond))()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			reqDone <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		reqDone <- nil
	}()

	// Let the request get into the (sleeping) handler, then signal.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-reqDone:
		if err != nil {
			t.Fatalf("in-flight request during drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run never returned after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "drained, bye") {
		t.Fatalf("missing drain farewell in output:\n%s", s)
	}
}

// TestReloadKeepsSnapshotOnCorruptReport corrupts the report file under a
// running daemon: the reload must fail loudly while the previous snapshot
// keeps serving, and the failure must be visible in /metrics.
func TestReloadKeepsSnapshotOnCorruptReport(t *testing.T) {
	repPath, taxPath := writeExampleFiles(t)
	srv, h := newDaemon(t, "-report", repPath, "-tax", taxPath)

	var before rulesResp
	getJSON(t, h, "/rules?item=bryers", &before)
	if len(before.Rules) == 0 {
		t.Fatal("daemon served no rules before corruption")
	}

	for _, corrupt := range []string{
		`{"minSupport": 0.04, "rules": [{"antecedent"`, // truncated mid-document
		`this is not json at all`,
		`{"rules": [{"antecedent": [], "consequent": ["x"]}]}`, // structurally invalid
	} {
		if err := os.WriteFile(repPath, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusInternalServerError {
			t.Fatalf("reload of corrupt report: code = %d, want 500", code)
		}
		var after rulesResp
		getJSON(t, h, "/rules?item=bryers", &after)
		if len(after.Rules) != len(before.Rules) {
			t.Fatalf("snapshot changed after failed reload: %d rules, was %d", len(after.Rules), len(before.Rules))
		}
	}

	var metrics struct {
		Reloads struct {
			Failed    int64  `json:"failed"`
			LastError string `json:"lastError"`
		} `json:"reloads"`
	}
	getJSON(t, h, "/metrics", &metrics)
	if metrics.Reloads.Failed != 3 || metrics.Reloads.LastError == "" {
		t.Fatalf("reload failures not surfaced in metrics: %+v", metrics.Reloads)
	}

	// A repaired file reloads fine.
	rep2, _ := writeExampleFiles(t)
	data, err := os.ReadFile(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(repPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("reload of repaired report: code = %d, want 200", code)
	}
	_ = srv
}
