package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"negmine"
	"negmine/internal/bench"
	"negmine/internal/report"
	"negmine/internal/serve"
	"negmine/internal/txdb"
)

// newDaemon parses args and returns a started server plus its handler —
// the daemon minus the listening socket.
func newDaemon(t *testing.T, args ...string) (*serve.Server, http.Handler) {
	t.Helper()
	cfg, err := parseFlags(args, os.Stderr)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	srv, err := serve.NewServer(context.Background(), cfg.loadFunc,
		serve.WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv, srv.Handler()
}

func getJSON(t *testing.T, h http.Handler, url string, out any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

func postJSON(t *testing.T, h http.Handler, url, body string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, strings.NewReader(body)))
	if out != nil && (rec.Code == http.StatusOK || rec.Code == http.StatusAccepted) {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", url, err)
		}
	}
	return rec.Code
}

type rulesResp struct {
	Expanded []string                    `json:"expanded"`
	Rules    []report.NegativeRuleRecord `json:"rules"`
}

type scoreResp struct {
	Matches []struct {
		report.NegativeRuleRecord
		Triggers map[string]string `json:"triggers"`
	} `json:"matches"`
}

// TestRoundTripPaperExample is the full mine → JSON → serve → query loop on
// the paper's §2.1.1 worked example: the report written by the miner (the
// `negmine -format json` output) is served by negmined and queried back.
func TestRoundTripPaperExample(t *testing.T) {
	tax, db, err := bench.PaperExample()
	if err != nil {
		t.Fatalf("PaperExample: %v", err)
	}
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatalf("MineNegative: %v", err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("worked example mined no rules")
	}

	dir := t.TempDir()
	repPath := filepath.Join(dir, "rules.json")
	taxPath := filepath.Join(dir, "tax.txt")
	rf, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := negmine.WriteNegativeJSON(rf, res, 0.04, 0.5, tax.Name); err != nil {
		t.Fatalf("WriteNegativeJSON: %v", err)
	}
	rf.Close()
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatalf("taxonomy Write: %v", err)
	}
	tf.Close()

	_, h := newDaemon(t, "-report", repPath, "-tax", taxPath)

	// The worked example's headline rule is perrier =/=> bryers. A query
	// for the leaf bryers must surface it (consequent match) together with
	// rules on bryers' ancestors, via the taxonomy ancestor index.
	var rr rulesResp
	getJSON(t, h, "/rules?item=bryers", &rr)
	if len(rr.Expanded) < 2 || rr.Expanded[1] != "frozenyogurt" {
		t.Fatalf("bryers expansion = %v", rr.Expanded)
	}
	hasRule := func(rules []report.NegativeRuleRecord, ante, cons string) bool {
		for _, r := range rules {
			if len(r.Antecedent) == 1 && r.Antecedent[0] == ante &&
				len(r.Consequent) == 1 && r.Consequent[0] == cons {
				return true
			}
		}
		return false
	}
	if !hasRule(rr.Rules, "perrier", "bryers") {
		t.Fatalf("perrier =/=> bryers not served for bryers: %+v", rr.Rules)
	}
	// The ancestor index at work: a rule mined at category level
	// (frozenyogurt) is surfaced for its leaf descendant bryers.
	if !hasRule(rr.Rules, "perrier", "frozenyogurt") {
		t.Fatalf("perrier =/=> frozenyogurt not surfaced via ancestor index: %+v", rr.Rules)
	}

	// Scoring a perrier basket triggers the headline rule: this customer
	// is unlikely to buy bryers.
	var sr scoreResp
	if code := postJSON(t, h, "/score", `{"basket":["perrier"]}`, &sr); code != http.StatusOK {
		t.Fatalf("/score: %d", code)
	}
	found := false
	for _, m := range sr.Matches {
		if len(m.Consequent) == 1 && m.Consequent[0] == "bryers" {
			found = true
			if m.Triggers["perrier"] != "perrier" {
				t.Fatalf("trigger = %v", m.Triggers)
			}
		}
	}
	if !found {
		t.Fatalf("score(perrier) missed bryers: %+v", sr.Matches)
	}

	// Every served rule round-trips exactly from the mined result.
	st := negmine.NewRuleStore(res, tax.Name)
	for _, r := range rr.Rules {
		e, ok := st.Lookup(r.Antecedent, r.Consequent)
		if !ok {
			t.Fatalf("served rule %v =/=> %v not in mined store", r.Antecedent, r.Consequent)
		}
		if e.RI != r.RuleInterest || e.Expected != r.ExpectedSupport || e.Actual != r.ActualSupport {
			t.Fatalf("served rule %v diverged from mined entry %+v", r, e)
		}
	}
}

// TestEndToEndMinedShortDataset starts negmined in mining mode on the
// paper's Short dataset (scaled), lets it mine its own snapshot, and
// checks /rules and /score answers against an independent run of the same
// pipeline.
func TestEndToEndMinedShortDataset(t *testing.T) {
	ds, err := bench.Short(100, 1) // 500 transactions, full 8,000-item universe
	if err != nil {
		t.Fatalf("Short: %v", err)
	}
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "short.nmtx")
	taxPath := filepath.Join(dir, "tax.txt")
	if err := txdb.WriteFile(dataPath, ds.DB); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Tax.Write(tf); err != nil {
		t.Fatalf("taxonomy Write: %v", err)
	}
	tf.Close()

	srv, h := newDaemon(t,
		"-data", dataPath, "-tax", taxPath, "-minsup", "0.02", "-minri", "0.5")

	snap := srv.Snapshot()
	if snap.Len() == 0 {
		t.Fatal("daemon mined no rules from the Short dataset")
	}

	// Reference run: same files, same options, through the public API.
	tax, err := loadTaxonomy(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := negmine.OpenDB(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	opt := negmine.NegativeOptions{MinSupport: 0.02, MinRI: 0.5}
	opt.Gen.Algorithm = negmine.Cumulate
	rep, err := negmine.MineNegativeReport(db, tax, opt)
	if err != nil {
		t.Fatalf("reference mine: %v", err)
	}
	want := negmine.RuleStoreFromReport(rep)
	if snap.Len() != want.Len() {
		t.Fatalf("daemon serves %d rules, reference mined %d", snap.Len(), want.Len())
	}

	// /rules: for every item of the first few reference rules, the served
	// answer must contain that rule with identical measurements.
	checked := 0
	for _, e := range want.All() {
		if checked >= 5 {
			break
		}
		checked++
		item := e.Antecedent[0]
		var rr rulesResp
		getJSON(t, h, "/rules?item="+item, &rr)
		found := false
		for _, r := range rr.Rules {
			if got, ok := want.Lookup(r.Antecedent, r.Consequent); !ok {
				t.Fatalf("served rule %v =/=> %v not mined", r.Antecedent, r.Consequent)
			} else if got.RI != r.RuleInterest {
				t.Fatalf("RI mismatch for %v: served %v, mined %v", r.Antecedent, r.RuleInterest, got.RI)
			}
			if fmt.Sprint(r.Antecedent) == fmt.Sprint(e.Antecedent) &&
				fmt.Sprint(r.Consequent) == fmt.Sprint(e.Consequent) {
				found = true
			}
		}
		if !found {
			t.Fatalf("/rules?item=%s did not return rule %v =/=> %v", item, e.Antecedent, e.Consequent)
		}

		// /score with the full antecedent as basket must trigger the rule.
		basket, _ := json.Marshal(e.Antecedent)
		var sr scoreResp
		if code := postJSON(t, h, "/score", `{"basket":`+string(basket)+`}`, &sr); code != http.StatusOK {
			t.Fatalf("/score: %d", code)
		}
		found = false
		for _, m := range sr.Matches {
			if fmt.Sprint(m.Antecedent) == fmt.Sprint(e.Antecedent) &&
				fmt.Sprint(m.Consequent) == fmt.Sprint(e.Consequent) {
				found = true
			}
		}
		if !found {
			t.Fatalf("score(%v) did not trigger its own rule", e.Antecedent)
		}
	}

	// /healthz reports the mined snapshot.
	var health struct {
		Status   string `json:"status"`
		Snapshot struct {
			Rules  int    `json:"rules"`
			Source string `json:"source"`
		} `json:"snapshot"`
	}
	getJSON(t, h, "/healthz", &health)
	if health.Status != "ok" || health.Snapshot.Rules != want.Len() ||
		!strings.Contains(health.Snapshot.Source, "short.nmtx") {
		t.Fatalf("healthz = %+v", health)
	}

	// Hot re-mine: /reload?wait=1 re-runs the pipeline and swaps; the rule
	// set is unchanged (same inputs) and metrics record the reload.
	if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("/reload: %d", code)
	}
	if got := srv.Snapshot().Len(); got != want.Len() {
		t.Fatalf("after re-mine: %d rules, want %d", got, want.Len())
	}
	var metrics struct {
		Reloads struct {
			OK int64 `json:"ok"`
		} `json:"reloads"`
	}
	getJSON(t, h, "/metrics", &metrics)
	if metrics.Reloads.OK != 1 {
		t.Fatalf("reloads.ok = %d, want 1", metrics.Reloads.OK)
	}
}

// TestReportReloadPicksUpNewFile overwrites the served report and reloads:
// the daemon must swap to the new rule set.
func TestReportReloadPicksUpNewFile(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "rules.json")
	taxPath := filepath.Join(dir, "tax.txt")
	writeReport := func(ri float64) {
		rep := &report.NegativeReport{
			MinSupport: 0.02, MinRI: 0.5,
			Rules: []report.NegativeRuleRecord{
				{Antecedent: []string{"pepsi"}, Consequent: []string{"chips"}, RuleInterest: ri},
			},
		}
		raw, _ := json.Marshal(rep)
		if err := os.WriteFile(repPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeReport(0.6)
	if err := os.WriteFile(taxPath, []byte("soft-drinks pepsi\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, h := newDaemon(t, "-report", repPath, "-tax", taxPath)
	var rr rulesResp
	getJSON(t, h, "/rules?item=pepsi", &rr)
	if len(rr.Rules) != 1 || rr.Rules[0].RuleInterest != 0.6 {
		t.Fatalf("initial rules = %+v", rr.Rules)
	}

	writeReport(0.9)
	if code := postJSON(t, h, "/reload?wait=1", "", nil); code != http.StatusOK {
		t.Fatalf("/reload: %d", code)
	}
	getJSON(t, h, "/rules?item=pepsi", &rr)
	if len(rr.Rules) != 1 || rr.Rules[0].RuleInterest != 0.9 {
		t.Fatalf("post-reload rules = %+v", rr.Rules)
	}
}

func TestParseFlagsValidation(t *testing.T) {
	var sink strings.Builder
	if _, err := parseFlags([]string{"-report", "x.json"}, &sink); err == nil {
		t.Fatal("missing -tax accepted")
	}
	if _, err := parseFlags([]string{"-tax", "t.txt"}, &sink); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := parseFlags([]string{"-tax", "t.txt", "-report", "r.json", "-data", "d.txt"}, &sink); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := parseFlags([]string{"-tax", "t", "-data", "d", "-alg", "bogus"}, &sink); err == nil {
		t.Fatal("bad -alg accepted")
	}
	if _, err := parseFlags([]string{"-tax", "t", "-data", "d", "-gen", "bogus"}, &sink); err == nil {
		t.Fatal("bad -gen accepted")
	}
	if _, err := parseFlags([]string{"-tax", "t", "-data", "d", "-backend", "bogus"}, &sink); err == nil {
		t.Fatal("bad -backend accepted")
	}
	// -h usage goes to the provided writer and documents the report flow.
	sink.Reset()
	if _, err := parseFlags([]string{"-h"}, &sink); err == nil {
		t.Fatal("-h did not error")
	}
	if !strings.Contains(sink.String(), "negmine -format json") {
		t.Fatalf("usage text missing report provenance:\n%s", sink.String())
	}
}

// TestGovernanceFlagValidation covers the resource-governance flags: invalid
// combinations must come back as usageErrors (exit 2 in main), valid ones
// must build the governor and budget they describe.
func TestGovernanceFlagValidation(t *testing.T) {
	var sink strings.Builder
	base := []string{"-tax", "t.txt", "-report", "r.json"}
	bad := [][]string{
		{"-max-queue", "10"},                         // queue without a concurrency ceiling
		{"-max-concurrent", "-1"},                    // negative ceiling
		{"-max-rps", "-5"},                           // negative rate
		{"-max-queue", "-3", "-max-concurrent", "4"}, // negative queue
		{"-request-timeout", "-1s"},                  // negative duration
		{"-drain", "-10s"},
		{"-poll", "-2s"},
		{"-max-body", "wat"},
		{"-mem-budget", "wat"},
	}
	for _, extra := range bad {
		_, err := parseFlags(append(append([]string{}, base...), extra...), &sink)
		if err == nil {
			t.Fatalf("%v accepted", extra)
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: error %v is not a usageError (would exit 1, want 2)", extra, err)
		}
	}

	// Valid: admission control on, bounded queue, rate limit, body bound.
	cfg, err := parseFlags(append(append([]string{}, base...),
		"-max-concurrent", "8", "-max-queue", "32", "-max-rps", "100", "-max-body", "64KiB"), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.gov == nil {
		t.Fatal("-max-concurrent did not build a governor")
	}
	if cfg.maxBody != 64<<10 {
		t.Fatalf("maxBody = %d, want %d", cfg.maxBody, 64<<10)
	}

	// Rate limit alone also enables admission control.
	cfg, err = parseFlags(append(append([]string{}, base...), "-max-rps", "50"), &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.gov == nil {
		t.Fatal("-max-rps alone did not build a governor")
	}

	// No governance flags: no governor, default body bound, parse still ok.
	cfg, err = parseFlags(base, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.gov != nil {
		t.Fatal("governor built without governance flags")
	}
	if cfg.maxBody != 0 {
		t.Fatalf("maxBody = %d, want 0 (serve default)", cfg.maxBody)
	}

	// -mem-budget off and explicit sizes both parse.
	if _, err := parseFlags(append(append([]string{}, base...), "-mem-budget", "off"), &sink); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFlags(append(append([]string{}, base...), "-mem-budget", "512MiB"), &sink); err != nil {
		t.Fatal(err)
	}

	// Usage errors unwrap to exit status 2, plain errors to 1, -h to 0 —
	// the contract main's switch implements.
	_, err = parseFlags([]string{"-tax", "t", "-report", "r", "-max-queue", "1"}, &sink)
	var ue *usageError
	if !errors.As(err, &ue) {
		t.Fatalf("usage error lost its type: %v", err)
	}
	_, err = parseFlags([]string{"-h"}, &sink)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: %v, want flag.ErrHelp", err)
	}
	if errors.As(err, &ue) {
		t.Fatal("-h classified as usage error (would exit 2, want 0)")
	}
}
