// Command experiments regenerates the paper's evaluation tables and
// figures:
//
//	experiments -table 12           # Tables 1 & 2: the worked example
//	experiments -fig 5 -scale 10    # Figure 5: Naive vs Better, "Short"
//	experiments -fig 6 -scale 10    # Figure 6: Naive vs Better, "Tall"
//	experiments -fig 7 -scale 10    # Figure 7: candidates vs fanout
//	experiments -all -scale 10      # everything
//	experiments -countbench -countout BENCH_counting.json
//	                                # counting-backend ablation (hashtree vs bitmap)
//	experiments -servebench -serveout BENCH_serving.json
//	                                # serving layer: snapshot build + query latency
//	experiments -overloadbench -serveout BENCH_serving.json
//	                                # admission control: shed rate and admitted
//	                                # latency at 1x/2x/4x the -max-rps budget
//	experiments -ingestbench -serveout BENCH_serving.json
//	                                # streaming ingest: durable append throughput
//	                                # and delta refresh vs full re-mine at
//	                                # 1%/10%/50% deltas
//	experiments -snapbench -serveout BENCH_serving.json
//	                                # .nsnap cold start: encode time, file size,
//	                                # mmap load vs mine-from-raw rebuild
//	experiments -clusterbench -serveout BENCH_serving.json
//	                                # sharded cluster: merged /score latency
//	                                # through the router at 1/2/4 shards, plus
//	                                # one-shard-down degraded (206) mode
//
// -scale divides the transaction count (50,000 at scale 1) while keeping
// the paper's 8,000-item universe, so relative supports — and hence every
// curve's shape — are preserved. Absolute times shrink accordingly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"negmine/internal/bench"
	"negmine/internal/count"
	"negmine/internal/gen"
	"negmine/internal/negative"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "", "figures to regenerate: comma-separated of 5,6,7")
		table     = fs.String("table", "", "tables to regenerate: 1, 2 or 12")
		all       = fs.Bool("all", false, "run every experiment")
		scale     = fs.Int("scale", 10, "transaction-count divisor (1 = the paper's 50,000)")
		seed      = fs.Int64("seed", 1, "dataset seed")
		minRI     = fs.Float64("minri", 0.5, "minimum rule interest (paper: 0.5)")
		minsups   = fs.String("minsups", "2,1.5,1,0.75,0.5", "support levels in percent for figures 5/6")
		maxK      = fs.Int("maxk", 0, "stage-1 level cap (0 = unlimited)")
		parallel  = fs.Int("parallel", 1, "counting workers")
		backend   = fs.String("backend", "auto", "counting backend: auto, hashtree or bitmap")
		disk      = fs.Bool("disk", false, "stream transactions from disk on every pass (the paper's setting)")
		slowIO    = fs.Int("slowio", 0, "simulated scan cost in µs per transaction (0 = off); models the paper's 1995 disk-bound regime")
		cbench    = fs.Bool("countbench", false, "time the Improved counting pass under both backends (hashtree vs bitmap)")
		cbenchOut = fs.String("countout", "", "also write the -countbench results as JSON to this file (e.g. BENCH_counting.json)")
		reps      = fs.Int("reps", 3, "repetitions per -countbench/-servebench measurement (best time kept)")
		sbench    = fs.Bool("servebench", false, "measure serving-snapshot build time and lookup throughput/latency on Short and Tall")
		sbenchOut = fs.String("serveout", "", "also write the -servebench results as JSON to this file (e.g. BENCH_serving.json)")
		lookups   = fs.Int("lookups", 20000, "timed queries per -servebench run")
		obench    = fs.Bool("overloadbench", false, "drive the governed daemon at 1x/2x/4x its -max-rps and record shed rate + admitted latency")
		ibench    = fs.Bool("ingestbench", false, "measure segment-log append throughput and delta refresh vs full re-mine at 1%/10%/50% deltas")
		snapb     = fs.Bool("snapbench", false, "measure .nsnap encode time, file size, and mmap-load vs mine-from-raw cold start on Short and Tall")
		clbench   = fs.Bool("clusterbench", false, "measure merged /score latency through the shard router at 1/2/4 shards, plus one-shard-down degraded mode")
		maxRPS    = fs.Float64("maxrps", 200, "token-bucket rate the -overloadbench governor enforces (the daemon's -max-rps)")
		overSec   = fs.Duration("overloadsec", 2*time.Second, "measurement window per -overloadbench load level")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	figs := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		if f = strings.TrimSpace(f); f != "" {
			figs[f] = true
		}
	}
	tables := map[string]bool{}
	switch *table {
	case "":
	case "12":
		tables["1"], tables["2"] = true, true
	default:
		for _, t := range strings.Split(*table, ",") {
			tables[strings.TrimSpace(t)] = true
		}
	}
	if *all {
		figs["5"], figs["6"], figs["7"] = true, true, true
		tables["1"], tables["2"] = true, true
	}
	if len(figs) == 0 && len(tables) == 0 && !*cbench && !*sbench && !*obench && !*ibench && !*snapb && !*clbench {
		fs.Usage()
		return fmt.Errorf("nothing selected; use -fig, -table, -countbench, -servebench, -overloadbench, -ingestbench, -snapbench, -clusterbench or -all")
	}

	sups, err := parseFloats(*minsups)
	if err != nil {
		return err
	}
	countBackend, err := count.ParseBackend(*backend)
	if err != nil {
		return err
	}
	cfg := bench.TimingConfig{
		MinSupsPct: sups,
		MinRI:      *minRI,
		GenAlg:     gen.Cumulate,
		MaxK:       *maxK,
		Parallel:   *parallel,
		Backend:    countBackend,
	}

	if tables["1"] || tables["2"] {
		fmt.Fprintln(out, "=== Tables 1 & 2 — worked example (Figure 2 taxonomy) ===")
		rep, err := bench.RunPaperExample()
		if err != nil {
			return err
		}
		rep.Print(out)
		fmt.Fprintln(out)
	}

	var short, tall *bench.Dataset
	need := func(name string) (*bench.Dataset, error) {
		cached := &short
		build := bench.Short
		if name == "Tall" {
			cached, build = &tall, bench.Tall
		}
		if *cached != nil {
			return *cached, nil
		}
		fmt.Fprintf(out, "generating %q dataset (scale %d)...\n", name, *scale)
		ds, err := build(*scale, *seed)
		if err != nil {
			return nil, err
		}
		if *disk {
			dir, err := os.MkdirTemp("", "negmine-exp")
			if err != nil {
				return nil, err
			}
			ds, err = ds.OnDisk(dir + "/" + name + ".nmtx")
			if err != nil {
				return nil, err
			}
		}
		if *slowIO > 0 {
			ds = ds.Throttled(time.Duration(*slowIO) * time.Microsecond)
		}
		*cached = ds
		return ds, nil
	}

	if figs["5"] {
		ds, err := need("Short")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== Figure 5 — execution times, \"Short\" dataset ===")
		rows, err := bench.RunTimings(ds, cfg)
		if err != nil {
			return err
		}
		bench.PrintTimings(out, ds, rows)
		fmt.Fprintln(out)
	}
	if figs["6"] {
		ds, err := need("Tall")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== Figure 6 — execution times, \"Tall\" dataset ===")
		rows, err := bench.RunTimings(ds, cfg)
		if err != nil {
			return err
		}
		bench.PrintTimings(out, ds, rows)
		fmt.Fprintln(out)
	}
	if figs["7"] {
		s, err := need("Short")
		if err != nil {
			return err
		}
		tl, err := need("Tall")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "=== Figure 7 — negative candidates vs taxonomy fanout ===")
		pct := 1.5
		if len(sups) > 0 {
			pct = sups[len(sups)/2]
		}
		cs, err := bench.RunCandidates(s, pct, *minRI, gen.Cumulate, *maxK, *parallel)
		if err != nil {
			return err
		}
		ct, err := bench.RunCandidates(tl, pct, *minRI, gen.Cumulate, *maxK, *parallel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "(at minsup %.2f%%, MinRI %.2f)\n", pct, *minRI)
		bench.PrintCandidates(out, []*bench.CandidateCounts{cs, ct})
		fmt.Fprintf(out, "\nanalytic estimate (§2.1.2), candidates from one large k-itemset:\n")
		for k := 2; k <= 4; k++ {
			fmt.Fprintf(out, "  k=%d: fanout 9 → %.0f, fanout 3 → %.0f\n",
				k, negative.EstimateCandidates(k, 9), negative.EstimateCandidates(k, 3))
		}
		fmt.Fprintln(out)
	}
	if *cbench {
		fmt.Fprintln(out, "=== Counting backends — Improved negative pass, hashtree vs bitmap ===")
		pct := 1.0
		if len(sups) > 0 {
			pct = sups[len(sups)/2]
		}
		var cmps []*bench.CountingComparison
		for _, name := range []string{"Short", "Tall"} {
			ds, err := need(name)
			if err != nil {
				return err
			}
			cmp, err := bench.RunCountingBackends(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, *reps)
			if err != nil {
				return err
			}
			cmps = append(cmps, cmp)
		}
		bench.PrintCounting(out, cmps)
		if *cbenchOut != "" {
			f, err := os.Create(*cbenchOut)
			if err != nil {
				return err
			}
			if err := bench.WriteCountingJSON(f, *scale, cmps); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *cbenchOut)
		}
		fmt.Fprintln(out)
	}
	var srows []*bench.ServingBench
	var orows []*bench.OverloadBench
	if *sbench {
		fmt.Fprintln(out, "=== Serving layer — snapshot build time and query latency ===")
		pct := 2.0
		if len(sups) > 0 {
			pct = sups[0]
		}
		for _, name := range []string{"Short", "Tall"} {
			ds, err := need(name)
			if err != nil {
				return err
			}
			row, err := bench.RunServingBench(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, *reps, *lookups)
			if err != nil {
				return err
			}
			srows = append(srows, row)
		}
		bench.PrintServing(out, srows)
		fmt.Fprintln(out)
	}
	if *obench {
		fmt.Fprintln(out, "=== Overload — shed rate and admitted latency at 1x/2x/4x -max-rps ===")
		pct := 2.0
		if len(sups) > 0 {
			pct = sups[0]
		}
		ds, err := need("Short")
		if err != nil {
			return err
		}
		row, err := bench.RunOverloadBench(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, *maxRPS, *overSec)
		if err != nil {
			return err
		}
		orows = append(orows, row)
		bench.PrintOverload(out, orows)
		fmt.Fprintln(out)
	}
	var irows []*bench.IngestBench
	if *ibench {
		fmt.Fprintln(out, "=== Streaming ingest — append throughput and delta refresh vs full re-mine ===")
		pct := 2.0
		if len(sups) > 0 {
			pct = sups[0]
		}
		ds, err := need("Short")
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "negmine-ingestbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		row, err := bench.RunIngestBench(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, dir)
		if err != nil {
			return err
		}
		irows = append(irows, row)
		bench.PrintIngest(out, irows)
		fmt.Fprintln(out)
	}
	var snrows []*bench.SnapshotBench
	if *snapb {
		fmt.Fprintln(out, "=== Snapshot — .nsnap mmap cold start vs mine-from-raw rebuild ===")
		pct := 2.0
		if len(sups) > 0 {
			pct = sups[0]
		}
		dir, err := os.MkdirTemp("", "negmine-snapbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		for _, name := range []string{"Short", "Tall"} {
			ds, err := need(name)
			if err != nil {
				return err
			}
			row, err := bench.RunSnapshotBench(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, *reps, dir)
			if err != nil {
				return err
			}
			snrows = append(snrows, row)
		}
		bench.PrintSnapshot(out, snrows)
		fmt.Fprintln(out)
	}
	var clrows []*bench.ClusterBench
	if *clbench {
		fmt.Fprintln(out, "=== Cluster — merged /score latency at 1/2/4 shards and one-shard-down degraded mode ===")
		pct := 2.0
		if len(sups) > 0 {
			pct = sups[0]
		}
		ds, err := need("Short")
		if err != nil {
			return err
		}
		row, err := bench.RunClusterBench(ds, pct, *minRI, gen.Cumulate, *maxK, *parallel, *lookups/10)
		if err != nil {
			return err
		}
		clrows = append(clrows, row)
		bench.PrintCluster(out, clrows)
		fmt.Fprintln(out)
	}
	if *sbenchOut != "" && (len(srows) > 0 || len(orows) > 0 || len(irows) > 0 || len(snrows) > 0 || len(clrows) > 0) {
		f, err := os.Create(*sbenchOut)
		if err != nil {
			return err
		}
		if err := bench.WriteServingJSON(f, *scale, srows, orows, irows, snrows, clrows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *sbenchOut)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad support level %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
