package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestTables12(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "12"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table 1", "Table 2",
		"{perrier} =/=> {bryers}",
		"{bryers}", "200",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	var out bytes.Buffer
	// Heavy scaling keeps this a smoke test; MaxK bounds level depth.
	err := run([]string{"-fig", "5,7", "-scale", "100", "-minsups", "3,2", "-maxk", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Figure 5", "naive(s)", "Figure 7", "analytic estimate",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestServeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark in -short mode")
	}
	var out bytes.Buffer
	outPath := t.TempDir() + "/BENCH_serving.json"
	err := run([]string{"-servebench", "-scale", "100", "-minsups", "2", "-maxk", "3",
		"-reps", "1", "-lookups", "500", "-serveout", outPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Serving layer", "Short", "Tall", "p99", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benches []struct {
			Dataset      string  `json:"dataset"`
			Rules        int     `json:"rules"`
			BuildSeconds float64 `json:"snapshot_build_seconds"`
			P99          float64 `json:"lookup_p99_us"`
		} `json:"benches"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad BENCH_serving.json: %v", err)
	}
	if len(doc.Benches) != 2 || doc.Benches[0].Dataset != "Short" || doc.Benches[1].Dataset != "Tall" {
		t.Fatalf("benches = %+v", doc.Benches)
	}
	for _, b := range doc.Benches {
		if b.Rules == 0 || b.BuildSeconds <= 0 || b.P99 <= 0 {
			t.Errorf("degenerate bench row: %+v", b)
		}
	}
}

func TestOverloadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("overload benchmark in -short mode")
	}
	var out bytes.Buffer
	outPath := t.TempDir() + "/BENCH_serving.json"
	err := run([]string{"-overloadbench", "-scale", "100", "-minsups", "2", "-maxk", "3",
		"-maxrps", "400", "-overloadsec", "150ms", "-serveout", outPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Overload", "1x", "4x", "shed", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Overload []struct {
			MaxRPS float64 `json:"max_rps"`
			Levels []struct {
				Multiplier float64 `json:"multiplier"`
				Requests   int     `json:"requests"`
				ShedRate   float64 `json:"shed_rate"`
				P99        float64 `json:"admitted_p99_us"`
			} `json:"levels"`
		} `json:"overload"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad BENCH_serving.json: %v", err)
	}
	if len(doc.Overload) != 1 || len(doc.Overload[0].Levels) != 3 {
		t.Fatalf("overload section = %+v", doc.Overload)
	}
	levels := doc.Overload[0].Levels
	if levels[0].Multiplier != 1 || levels[1].Multiplier != 2 || levels[2].Multiplier != 4 {
		t.Fatalf("multipliers = %+v", levels)
	}
	for _, l := range levels {
		if l.Requests == 0 {
			t.Errorf("level %gx issued no requests", l.Multiplier)
		}
	}
	// Offering 4x the token-bucket rate must shed more than offering 1x.
	if levels[2].ShedRate <= levels[0].ShedRate {
		t.Errorf("shed rate not rising with load: 1x=%.3f 4x=%.3f",
			levels[0].ShedRate, levels[2].ShedRate)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run([]string{"-fig", "5", "-minsups", "abc"}, &out); err == nil {
		t.Error("bad minsups accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 2, 1.5 ,1,")
	if err != nil || len(got) != 3 || got[0] != 2 || got[1] != 1.5 || got[2] != 1 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseFloats("1,x"); err == nil {
		t.Error("bad float accepted")
	}
}

func TestIngestBench(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest benchmark in -short mode")
	}
	var out bytes.Buffer
	outPath := t.TempDir() + "/BENCH_serving.json"
	err := run([]string{"-ingestbench", "-scale", "100", "-minsups", "2", "-serveout", outPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Streaming ingest", "append", "delta", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Ingest []struct {
			Dataset  string  `json:"dataset"`
			Txns     int     `json:"txns"`
			AppendPS float64 `json:"append_txns_per_second"`
			Levels   []struct {
				DeltaPct    float64 `json:"delta_pct"`
				DeltaTxns   int     `json:"delta_txns"`
				Refresh     float64 `json:"delta_refresh_seconds"`
				Full        float64 `json:"full_remine_seconds"`
				NewSegments int     `json:"new_segments"`
			} `json:"delta_levels"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad BENCH_serving.json: %v", err)
	}
	if len(doc.Ingest) != 1 || len(doc.Ingest[0].Levels) != 3 {
		t.Fatalf("ingest section = %+v", doc.Ingest)
	}
	row := doc.Ingest[0]
	if row.Dataset != "Short" || row.Txns == 0 || row.AppendPS <= 0 {
		t.Fatalf("ingest row = %+v", row)
	}
	if row.Levels[0].DeltaPct != 1 || row.Levels[1].DeltaPct != 10 || row.Levels[2].DeltaPct != 50 {
		t.Fatalf("delta levels = %+v", row.Levels)
	}
	for _, l := range row.Levels {
		if l.DeltaTxns == 0 || l.Refresh <= 0 || l.Full <= 0 {
			t.Errorf("degenerate delta level: %+v", l)
		}
		// Exactly the delta was new: the base segments stayed cached.
		if l.NewSegments != 1 {
			t.Errorf("%g%% delta phase-I mined %d segments, want 1", l.DeltaPct, l.NewSegments)
		}
	}
}

func TestSnapBench(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot benchmark in -short mode")
	}
	var out bytes.Buffer
	outPath := t.TempDir() + "/BENCH_serving.json"
	err := run([]string{"-snapbench", "-scale", "100", "-minsups", "2", "-maxk", "3",
		"-reps", "1", "-serveout", outPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Snapshot", "Short", "Tall", "faster cold start", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Snapshot []struct {
			Dataset   string  `json:"dataset"`
			Rules     int     `json:"rules"`
			FileBytes int64   `json:"file_bytes"`
			Load      float64 `json:"mmap_load_seconds"`
			Rebuild   float64 `json:"rebuild_seconds"`
			Speedup   float64 `json:"load_speedup"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad BENCH_serving.json: %v", err)
	}
	if len(doc.Snapshot) != 2 || doc.Snapshot[0].Dataset != "Short" || doc.Snapshot[1].Dataset != "Tall" {
		t.Fatalf("snapshot section = %+v", doc.Snapshot)
	}
	for _, b := range doc.Snapshot {
		if b.Rules == 0 || b.FileBytes == 0 || b.Load <= 0 || b.Rebuild <= 0 || b.Speedup <= 0 {
			t.Errorf("degenerate snapshot row: %+v", b)
		}
	}
}
