// Command negrouter fronts a cluster of sharded negmined daemons: nodes
// register and heartbeat via POST /cluster/heartbeat (negmined
// -cluster-join), and the router fans queries out across the shards,
// merging the ranked results into the same document a single unsharded
// daemon would serve.
//
// Endpoints:
//
//	POST /score {"basket":[...]}   fan out by basket-item shard, merge
//	GET  /rules?item=NAME          fan out to every shard, merge
//	GET  /healthz                  router liveness + routable-shard summary
//	GET  /metrics                  fan-out counters, latency, cluster status
//	POST /cluster/heartbeat        node registration + liveness
//	GET  /cluster/status           full shard/replica health table
//
// Failure model: per-shard timeouts, budgeted retries against sibling
// replicas, optional request hedging, and per-replica circuit breakers.
// When a shard has no routable replica its slice of the answer is omitted
// and the response is HTTP 206 with "partial": true — a dead shard
// degrades the answer, it never turns into a 500.
//
// Flags:
//
//	-addr host:port   listen address (default :8378)
//	-shards n         cluster width (required)
//	-shard-timeout d  per-shard fan-out budget, attempts included (default 2s)
//	-retry-budget f   retries as a fraction of request volume (default 0.1,
//	                  0 disables retries)
//	-retry-burst f    retry token cap (default 3)
//	-hedge-after d    duplicate a slow shard request on a sibling replica
//	                  after this delay (default 0 = no hedging)
//	-probe-every d    health-probe interval for down replicas (default 500ms)
//	-heartbeat-ttl d  heartbeat staleness bound: older marks the replica
//	                  suspect, twice older marks it down (default 3s)
//	-down-after n     request failures that turn a suspect replica down
//	                  (default 3)
//	-breaker-after n  consecutive failures that open a replica's circuit
//	                  breaker (default 3)
//	-read-timeout/-write-timeout/-idle-timeout  http.Server limits
//	-drain d          graceful-shutdown drain budget (default 10s)
//
// The router holds no durable state: restart it and the next heartbeat
// round re-registers the fleet. It shuts down gracefully on SIGINT/SIGTERM
// like negmined: listener closes, in-flight requests get -drain to finish.
// Invalid flags exit 2 with usage; runtime failures exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"negmine/internal/cluster"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "negrouter:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks a flag-validation failure; main exits 2 for these.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usageErrf(fs *flag.FlagSet, format string, args ...any) error {
	fs.Usage()
	return &usageError{fmt.Errorf(format, args...)}
}

// config is everything run needs after flag parsing.
type config struct {
	addr   string
	router cluster.RouterConfig

	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	drain        time.Duration
}

// parseFlags builds the router config. Split from run so tests can build
// the handler without a listening socket.
func parseFlags(args []string, out io.Writer) (*config, error) {
	fs := flag.NewFlagSet("negrouter", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", ":8378", "listen address")
		shards       = fs.Int("shards", 0, "cluster width (required)")
		shardTO      = fs.Duration("shard-timeout", 2*time.Second, "per-shard fan-out budget, retries and hedges included")
		retryBudget  = fs.Float64("retry-budget", 0.1, "retries as a fraction of request volume (0 = no retries)")
		retryBurst   = fs.Float64("retry-burst", 3, "retry token cap")
		hedgeAfter   = fs.Duration("hedge-after", 0, "duplicate a slow shard request on a sibling after this delay (0 = no hedging)")
		probeEvery   = fs.Duration("probe-every", 500*time.Millisecond, "health-probe interval for down replicas")
		heartbeatTTL = fs.Duration("heartbeat-ttl", 3*time.Second, "heartbeat staleness bound")
		downAfter    = fs.Int("down-after", 3, "request failures that turn a suspect replica down")
		breakerAfter = fs.Int("breaker-after", 3, "consecutive failures that open a replica's circuit breaker")
		readTO       = fs.Duration("read-timeout", 10*time.Second, "http.Server read timeout (0 = none)")
		writeTO      = fs.Duration("write-timeout", 30*time.Second, "http.Server write timeout (0 = none)")
		idleTO       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server idle-connection timeout (0 = none)")
		drain        = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *shards < 1 {
		return nil, usageErrf(fs, "-shards = %d, want ≥ 1 (the cluster width is required)", *shards)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"-shard-timeout", *shardTO}, {"-hedge-after", *hedgeAfter},
		{"-read-timeout", *readTO}, {"-write-timeout", *writeTO},
		{"-idle-timeout", *idleTO}, {"-drain", *drain},
	} {
		if d.v < 0 {
			return nil, usageErrf(fs, "%s = %v, want ≥ 0", d.name, d.v)
		}
	}
	if *shardTO == 0 {
		return nil, usageErrf(fs, "-shard-timeout = 0, want > 0")
	}
	if *probeEvery <= 0 {
		return nil, usageErrf(fs, "-probe-every = %v, want > 0", *probeEvery)
	}
	if *heartbeatTTL <= 0 {
		return nil, usageErrf(fs, "-heartbeat-ttl = %v, want > 0", *heartbeatTTL)
	}
	if *retryBudget < 0 || *retryBurst < 0 {
		return nil, usageErrf(fs, "-retry-budget/-retry-burst want ≥ 0")
	}
	if *downAfter < 1 || *breakerAfter < 1 {
		return nil, usageErrf(fs, "-down-after/-breaker-after want ≥ 1")
	}

	rc := cluster.RouterConfig{
		Shards:       *shards,
		ShardTimeout: *shardTO,
		RetryBudget:  *retryBudget,
		RetryBurst:   *retryBurst,
		HedgeAfter:   *hedgeAfter,
		Pool: cluster.PoolConfig{
			Shards:        *shards,
			HeartbeatTTL:  *heartbeatTTL,
			ProbeInterval: *probeEvery,
			DownAfter:     *downAfter,
			BreakerAfter:  *breakerAfter,
		},
	}
	if *retryBudget == 0 {
		rc.RetryBudget = -1 // RouterConfig treats 0 as "default"; negative disables
	}
	return &config{
		addr: *addr, router: rc,
		readTimeout: *readTO, writeTimeout: *writeTO,
		idleTimeout: *idleTO, drain: *drain,
	}, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, out)
	if err != nil {
		return err
	}
	cfg.router.Logf = func(format string, args ...any) {
		fmt.Fprintf(out, "negrouter: "+format+"\n", args...)
	}
	rt, err := cluster.NewRouter(cfg.router)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx) // heartbeat sweep + down-replica probe loop

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "negrouter: routing %d shards on http://%s\n", cfg.router.Shards, ln.Addr())

	hs := &http.Server{
		Handler:      rt.Handler(),
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  cfg.idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(out, "negrouter: signal received, draining for up to %v\n", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "negrouter: drained, bye")
	return nil
}
