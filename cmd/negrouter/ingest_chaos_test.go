package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"negmine"
	"negmine/internal/datagen"
)

// TestIngestFailoverChaos runs the HA write path end to end with the real
// binaries: a negrouter forwarding /ingest to a primary/standby negmined
// pair replicating through a shared seglog store, with the primary
// SIGKILLed mid-soak. Survival contract:
//
//   - every acknowledged (202, or 200-duplicate) batch survives the
//     failover exactly once — acked TID ranges are disjoint and the
//     survivor's log holds precisely the seed plus the acked batches;
//   - the standby promotes itself within one lease interval (plus
//     detection slack) of losing its primary;
//   - a post-failover re-mine on the survivor is byte-identical to a
//     single never-failed daemon fed the same transaction stream;
//   - the deposed primary, restarted against the same store, boots fenced:
//     its writes answer 409 and the rejections are counted in /metrics.

// ingestFixture generates a taxonomy + basket pool and writes the files
// the daemons load: a taxonomy and a small seed the primary boots from.
func ingestFixture(t *testing.T, dir string) (taxPath, seedPath string, baskets [][]string, seedN int) {
	t.Helper()
	p := datagen.Scaled(datagen.Short(), 50)
	p.NumTransactions = 400
	p.Seed = 7
	tax, db, err := datagen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Scan(func(tx negmine.Transaction) error {
		names := make([]string, len(tx.Items))
		for i, x := range tx.Items {
			names[i] = tax.Name(x)
		}
		baskets = append(baskets, names)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	taxPath = filepath.Join(dir, "tax.txt")
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	seedN = 60
	seedPath = filepath.Join(dir, "seed.txt")
	var sb strings.Builder
	for _, b := range baskets[:seedN] {
		sb.WriteString(strings.Join(b, " "))
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(seedPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return taxPath, seedPath, baskets, seedN
}

// haIngestResp is the daemon/router /ingest acknowledgement.
type haIngestResp struct {
	Accepted  int   `json:"accepted"`
	FirstTID  int64 `json:"firstTid"`
	LastTID   int64 `json:"lastTid"`
	Duplicate bool  `json:"duplicate"`
}

// haTailPage mirrors negmined's GET /seglog/tail response.
type haTailPage struct {
	Epoch   int64 `json:"epoch"`
	NextTID int64 `json:"nextTid"`
	Txns    []struct {
		TID   int64   `json:"tid"`
		Items []int32 `json:"items"`
	} `json:"txns"`
	More bool `json:"more"`
}

// drainTail pages a daemon's full transaction log through /seglog/tail.
func drainTail(t *testing.T, base string) ([]int64, [][]int32, int64) {
	t.Helper()
	var tids []int64
	var items [][]int32
	after := int64(0)
	for {
		code, raw, err := tryRouter(http.MethodGet,
			fmt.Sprintf("%s/seglog/tail?after=%d&wait=0", base, after), "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("tail after=%d: HTTP %d, %v: %s", after, code, err, raw)
		}
		var page haTailPage
		if err := json.Unmarshal(raw, &page); err != nil {
			t.Fatal(err)
		}
		for _, tx := range page.Txns {
			tids = append(tids, tx.TID)
			items = append(items, tx.Items)
			after = tx.TID
		}
		if !page.More && (len(page.Txns) == 0 || after == page.NextTID-1) {
			return tids, items, page.NextTID
		}
	}
}

// metricsIngest fetches the ingest block of a daemon's /metrics.
func metricsIngest(t *testing.T, base string) (role string, epoch, fenced int64) {
	t.Helper()
	code, raw, err := tryRouter(http.MethodGet, base+"/metrics", "")
	if err != nil || code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d, %v", code, err)
	}
	var doc struct {
		Ingest *struct {
			Role          string `json:"role"`
			Epoch         int64  `json:"epoch"`
			FencedAppends int64  `json:"fencedAppends"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ingest == nil {
		t.Fatalf("/metrics has no ingest block: %s", raw)
	}
	return doc.Ingest.Role, doc.Ingest.Epoch, doc.Ingest.FencedAppends
}

func TestIngestFailoverChaos(t *testing.T) {
	if testing.Short() && os.Getenv("NEGMINE_CHAOS") == "" {
		t.Skip("multi-process chaos test skipped in -short (set NEGMINE_CHAOS=1 to force)")
	}
	minedBin, routerBin := binaries(t)
	dir := t.TempDir()
	taxPath, seedPath, baskets, seedN := ingestFixture(t, dir)

	const lease = 1500 * time.Millisecond
	router := startProc(t, "router", routerBin,
		"-addr", "127.0.0.1:0", "-shards", "1",
		"-heartbeat-ttl", "500ms", "-probe-every", "100ms", "-shard-timeout", "2s")
	routerURL := "http://" + router.addr

	mineArgs := []string{"-tax", taxPath, "-minsup", "0.15", "-minri", "0.3", "-maxk", "4"}
	primaryArgs := append([]string{
		"-addr", "127.0.0.1:0", "-ingest-dir", filepath.Join(dir, "logA"), "-data", seedPath,
		"-ha-role", "primary", "-seglog-store", filepath.Join(dir, "store"),
		"-ha-lease", lease.String(), "-ha-ack-timeout", "2s",
		"-node-id", "nodeP", "-cluster-join", routerURL, "-heartbeat", "100ms", "-drain", "2s",
	}, mineArgs...)
	primary := startProc(t, "primary", minedBin, primaryArgs...)

	standby := startProc(t, "standby", minedBin, append([]string{
		"-addr", "127.0.0.1:0", "-ingest-dir", filepath.Join(dir, "logB"),
		"-ha-role", "standby", "-seglog-store", filepath.Join(dir, "store"),
		"-ha-peer", "http://" + primary.addr, "-ha-lease", lease.String(),
		"-node-id", "nodeS", "-cluster-join", routerURL, "-heartbeat", "100ms", "-drain", "2s",
	}, mineArgs...)...)
	standbyURL := "http://" + standby.addr

	// Wait until the standby has replicated the whole seed — from here on,
	// every acknowledged write is backed by the replication ack.
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, _, next := drainTail(t, standbyURL)
		if next == int64(seedN)+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up with the %d-txn seed (NextTID %d)", seedN, next)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Keyed writers: each retries one (key, seq) batch until the router
	// acknowledges it, then moves to the next — the client half of the
	// exactly-once contract.
	type acked struct {
		baskets     [][]string
		first, last int64
	}
	soak := chaosSoakDuration()
	if soak < 4*time.Second {
		soak = 4 * time.Second // failover alone needs a lease interval
	}
	soakEnd := time.Now().Add(soak)
	var (
		mu    sync.Mutex
		acks  []acked
		wg    sync.WaitGroup
		dupes int
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			seq := uint64(0)
			for time.Now().Before(soakEnd) {
				seq++
				lo := rng.Intn(len(baskets) - 3)
				batch := baskets[lo : lo+3]
				body, _ := json.Marshal(map[string]any{
					"baskets": batch, "key": fmt.Sprintf("writer-%d", w), "seq": seq,
				})
				// Retry the same (key, seq) until acknowledged; 503/409 and
				// transport errors during failover are expected and safe.
				for attempt := 0; ; attempt++ {
					if attempt > 600 {
						t.Errorf("writer %d: seq %d never acknowledged", w, seq)
						return
					}
					code, raw, err := tryRouter(http.MethodPost, routerURL+"/ingest", string(body))
					if err != nil || code == http.StatusServiceUnavailable || code == http.StatusConflict || code >= 500 {
						time.Sleep(50 * time.Millisecond)
						continue
					}
					var resp haIngestResp
					if code != http.StatusAccepted && code != http.StatusOK {
						t.Errorf("writer %d: seq %d: HTTP %d: %s", w, seq, code, raw)
						return
					}
					if err := json.Unmarshal(raw, &resp); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					if resp.Accepted != len(batch) || resp.LastTID != resp.FirstTID+int64(len(batch))-1 {
						t.Errorf("writer %d: seq %d: bad ack %+v", w, seq, resp)
						return
					}
					mu.Lock()
					acks = append(acks, acked{baskets: batch, first: resp.FirstTID, last: resp.LastTID})
					if resp.Duplicate {
						dupes++
					}
					mu.Unlock()
					break
				}
			}
		}(w)
	}

	// The chaos event: SIGKILL the primary mid-soak, no drain, no goodbye.
	time.Sleep(soak / 3)
	t.Logf("SIGKILL primary (%s)", primary.addr)
	killedAt := time.Now()
	primary.kill()

	// The standby must promote itself within one lease interval of losing
	// contact (plus polling/detection slack).
	promoteBy := killedAt.Add(lease + 3*time.Second)
	for {
		role, epoch, _ := metricsIngest(t, standbyURL)
		if role == "primary" {
			t.Logf("standby promoted %v after SIGKILL (epoch %d)", time.Since(killedAt).Round(time.Millisecond), epoch)
			break
		}
		if time.Now().After(promoteBy) {
			t.Fatalf("standby not promoted within %v of the kill (role %q)", lease+3*time.Second, role)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// ... and the router must learn the new primary from its heartbeats.
	routeBy := time.Now().Add(5 * time.Second)
	for {
		_, raw, err := tryRouter(http.MethodGet, routerURL+"/healthz", "")
		var doc struct {
			IngestPrimary string `json:"ingestPrimary"`
		}
		if err == nil {
			_ = json.Unmarshal(raw, &doc)
		}
		if doc.IngestPrimary == "nodeS" {
			break
		}
		if time.Now().After(routeBy) {
			t.Fatalf("router never switched its ingest primary to nodeS (%q)", doc.IngestPrimary)
		}
		time.Sleep(50 * time.Millisecond)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	mu.Lock()
	t.Logf("soak: %d batches acknowledged (%d as duplicates) across the failover", len(acks), dupes)
	allAcks := append([]acked(nil), acks...)
	mu.Unlock()
	if len(allAcks) == 0 {
		t.Fatal("soak produced no acknowledged batches")
	}

	// Exactly-once: acked TID ranges tile without overlap, and the
	// survivor's log holds precisely the seed plus every acked batch.
	tids, rawTxns, nextTID := drainTail(t, standbyURL)
	sort.Slice(allAcks, func(i, j int) bool { return allAcks[i].first < allAcks[j].first })
	ackedTxns := 0
	for i, a := range allAcks {
		ackedTxns += len(a.baskets)
		if a.last >= nextTID {
			t.Fatalf("ack [%d,%d] beyond the survivor log (NextTID %d)", a.first, a.last, nextTID)
		}
		if i > 0 && a.first <= allAcks[i-1].last {
			t.Fatalf("acked ranges overlap: [%d,%d] then [%d,%d] — a batch was applied twice",
				allAcks[i-1].first, allAcks[i-1].last, a.first, a.last)
		}
	}
	if got, want := len(tids), seedN+ackedTxns; got != want {
		t.Fatalf("survivor log has %d txns, want seed %d + acked %d = %d (lost or duplicated writes)",
			got, seedN, ackedTxns, want)
	}
	for i, tid := range tids {
		if tid != int64(i)+1 {
			t.Fatalf("survivor log TIDs not dense: position %d holds %d", i, tid)
		}
	}

	// Byte-identity oracle: a fresh single daemon fed the survivor's exact
	// transaction stream must mine the same rules, byte for byte.
	tax := parseTaxFile(t, taxPath)
	oracle := startProc(t, "oracle", minedBin, append([]string{
		"-addr", "127.0.0.1:0", "-ingest-dir", filepath.Join(dir, "logOracle"),
	}, mineArgs...)...)
	oracleURL := "http://" + oracle.addr
	for lo := 0; lo < len(rawTxns); lo += 200 {
		hi := lo + 200
		if hi > len(rawTxns) {
			hi = len(rawTxns)
		}
		chunk := make([][]string, 0, hi-lo)
		for _, ids := range rawTxns[lo:hi] {
			names := make([]string, len(ids))
			for i, id := range ids {
				names[i] = tax.Name(negmine.Item(id))
			}
			chunk = append(chunk, names)
		}
		body, _ := json.Marshal(map[string]any{"baskets": chunk})
		code, raw, err := tryRouter(http.MethodPost, oracleURL+"/ingest", string(body))
		if err != nil || code != http.StatusAccepted {
			t.Fatalf("oracle ingest: HTTP %d, %v: %s", code, err, raw)
		}
	}
	for _, base := range []string{standbyURL, oracleURL} {
		code, raw, err := tryRouter(http.MethodPost, base+"/reload?wait=1", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("reload on %s: HTTP %d, %v: %s", base, code, err, raw)
		}
	}
	queried := 0
	seenItem := map[string]bool{}
	for _, b := range baskets {
		it := b[0]
		if seenItem[it] {
			continue
		}
		seenItem[it] = true
		url := "/rules?item=" + it + "&minri=0"
		_, got := routerDo(t, http.MethodGet, standbyURL+url, "")
		_, want := routerDo(t, http.MethodGet, oracleURL+url, "")
		if !bytes.Equal(got, want) {
			t.Fatalf("post-failover mine diverges from oracle on %s:\n got: %s\nwant: %s", url, got, want)
		}
		if queried++; queried == 20 {
			break
		}
	}
	t.Logf("post-failover mine byte-identical to oracle on %d items", queried)

	// The deposed primary restarts against the promoted store: it must come
	// up fenced, refuse writes with 409, and count the rejections.
	revenant := startProc(t, "primary*", minedBin, primaryArgs...)
	revenantURL := "http://" + revenant.addr
	body, _ := json.Marshal(map[string]any{
		"baskets": [][]string{baskets[0]}, "key": "late-writer", "seq": 1,
	})
	code, raw, err := tryRouter(http.MethodPost, revenantURL+"/ingest", string(body))
	if err != nil || code != http.StatusConflict {
		t.Fatalf("deposed primary accepted a write: HTTP %d, %v: %s", code, err, raw)
	}
	role, _, fenced := metricsIngest(t, revenantURL)
	if role != "fenced" || fenced < 1 {
		t.Fatalf("deposed primary role %q with %d fenced appends, want fenced/≥1", role, fenced)
	}
	t.Logf("deposed primary fenced: %d late appends rejected", fenced)
}

func parseTaxFile(t *testing.T, path string) *negmine.Taxonomy {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tax, err := negmine.ParseTaxonomy(f)
	if err != nil {
		t.Fatal(err)
	}
	return tax
}
