package main

import (
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"negmine/internal/cluster"
)

func TestParseFlagsValidation(t *testing.T) {
	var sink strings.Builder
	for _, bad := range [][]string{
		{},                // -shards required
		{"-shards", "0"},  // zero width
		{"-shards", "-2"}, // negative width
		{"-shards", "3", "-shard-timeout", "0"},
		{"-shards", "3", "-shard-timeout", "-1s"},
		{"-shards", "3", "-probe-every", "0"},
		{"-shards", "3", "-heartbeat-ttl", "0"},
		{"-shards", "3", "-retry-budget", "-0.5"},
		{"-shards", "3", "-retry-burst", "-1"},
		{"-shards", "3", "-down-after", "0"},
		{"-shards", "3", "-breaker-after", "0"},
		{"-shards", "3", "-hedge-after", "-1ms"},
		{"-shards", "3", "-drain", "-1s"},
	} {
		_, err := parseFlags(bad, &sink)
		if err == nil {
			t.Fatalf("%v accepted", bad)
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: error %v is not a usageError (would exit 1, want 2)", bad, err)
		}
	}
	if _, err := parseFlags([]string{"-h"}, &sink); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: %v, want flag.ErrHelp", err)
	}
}

func TestParseFlagsWiresRouterConfig(t *testing.T) {
	var sink strings.Builder
	cfg, err := parseFlags([]string{
		"-shards", "4", "-shard-timeout", "750ms", "-retry-budget", "0.2",
		"-hedge-after", "25ms", "-probe-every", "100ms", "-heartbeat-ttl", "1s",
		"-down-after", "2", "-breaker-after", "5",
	}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	rc := cfg.router
	if rc.Shards != 4 || rc.ShardTimeout != 750*time.Millisecond ||
		rc.RetryBudget != 0.2 || rc.HedgeAfter != 25*time.Millisecond {
		t.Fatalf("router config = %+v", rc)
	}
	if rc.Pool.ProbeInterval != 100*time.Millisecond || rc.Pool.HeartbeatTTL != time.Second ||
		rc.Pool.DownAfter != 2 || rc.Pool.BreakerAfter != 5 {
		t.Fatalf("pool config = %+v", rc.Pool)
	}

	// -retry-budget 0 means "no retries", which RouterConfig spells as a
	// negative budget (its own zero value means "use the default").
	cfg, err = parseFlags([]string{"-shards", "2", "-retry-budget", "0"}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.router.RetryBudget >= 0 {
		t.Fatalf("retry-budget 0 mapped to %v, want negative (disabled)", cfg.router.RetryBudget)
	}
}

// TestConfiguredRouterServes builds a router from parsed flags and checks
// the handler answers: an empty 3-shard cluster is degraded but alive, and
// a heartbeat registers a replica end to end.
func TestConfiguredRouterServes(t *testing.T) {
	var sink strings.Builder
	cfg, err := parseFlags([]string{"-shards", "3"}, &sink)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cfg.router)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || health.Status != "degraded" || health.Shards != 3 {
		t.Fatalf("empty-cluster healthz = %d %+v", rec.Code, health)
	}

	hb := `{"node":"n0","addr":"127.0.0.1:9000","shard":0,"shards":3,"generation":1,"snapshotAgeSeconds":0,"rules":10}`
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster/heartbeat", strings.NewReader(hb)))
	if rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster/status", nil))
	var st cluster.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Registered != 1 || st.Routable != 1 {
		t.Fatalf("status after heartbeat = %+v", st)
	}
}
