package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"negmine"
	"negmine/internal/bench"
	"negmine/internal/cluster"
	"negmine/internal/serve"
)

// The chaos test runs the real binaries: a negrouter process fronting three
// negmined shard processes, one of which gets SIGKILLed mid-load. Survival
// contract: the router never answers 5xx, degrades to 206 within one probe
// interval, and once the shard restarts from its snapshot store the merged
// answers are byte-identical to a single unsharded daemon's.

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// binaries builds negmined and negrouter once per test process.
func binaries(t *testing.T) (negmined, negrouter string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "negcluster-bin-")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir,
			"negmine/cmd/negmined", "negmine/cmd/negrouter")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "negmined"), filepath.Join(buildDir, "negrouter")
}

// proc is one daemon process under test.
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd
	addr string // parsed from the daemon's "... on http://ADDR" banner
	done chan struct{}
}

var addrRe = regexp.MustCompile(`on http://(\S+)`)

// startProc launches bin, waits for its listen banner, and tees all output
// to the test log.
func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, cmd: exec.Command(bin, args...), done: make(chan struct{})}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	addrc := make(chan string, 1)
	go func() {
		defer close(p.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[%s] %s", name, line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() { p.stop() })
	select {
	case p.addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not print its listen address within 30s", name)
	}
	return p
}

// kill SIGKILLs the process — the chaos event, no drain, no goodbye.
func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	<-p.done
	_ = p.cmd.Wait()
}

// stop terminates gracefully, escalating to SIGKILL after a timeout.
func (p *proc) stop() {
	if p.cmd.ProcessState != nil {
		return
	}
	_ = p.cmd.Process.Signal(os.Interrupt)
	waited := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-waited
	}
}

// chaosFixture mines the paper's worked example and writes the report +
// taxonomy files every shard serves.
func chaosFixture(t *testing.T, dir string) (repPath, taxPath string, rep *negmine.NegativeReport) {
	t.Helper()
	tax, db, err := bench.PaperExample()
	if err != nil {
		t.Fatal(err)
	}
	res, err := negmine.MineNegative(db, tax, negmine.NegativeOptions{MinSupport: 0.04, MinRI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	repPath = filepath.Join(dir, "rules.json")
	taxPath = filepath.Join(dir, "tax.txt")
	rf, err := os.Create(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := negmine.WriteNegativeJSON(rf, res, 0.04, 0.5, tax.Name); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	tf, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tax.Write(tf); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	f, err := os.Open(repPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err = negmine.ReadNegativeReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) == 0 {
		t.Fatal("fixture mined no rules")
	}
	return repPath, taxPath, rep
}

// referenceHandler serves the same report unsharded, in-process — the
// byte-identity oracle for merged router answers.
func referenceHandler(t *testing.T, repPath, taxPath string) http.Handler {
	t.Helper()
	srv, err := serve.NewServer(context.Background(), func(context.Context) (*serve.Snapshot, error) {
		tf, err := os.Open(taxPath)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		tax, err := negmine.ParseTaxonomy(tf)
		if err != nil {
			return nil, err
		}
		rf, err := os.Open(repPath)
		if err != nil {
			return nil, err
		}
		defer rf.Close()
		rep, err := negmine.ReadNegativeReport(rf)
		if err != nil {
			return nil, err
		}
		st := negmine.RuleStoreFromReport(rep)
		return serve.BuildSnapshot(st, tax, serve.Meta{
			MinSupport: rep.MinSupport, MinRI: rep.MinRI,
		}), nil
	}, serve.WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler()
}

func referenceBody(t *testing.T, ref http.Handler, method, url, body string) []byte {
	t.Helper()
	var r *http.Request
	if method == http.MethodPost {
		r = httptest.NewRequest(method, url, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, url, nil)
	}
	rec := httptest.NewRecorder()
	ref.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("reference %s %s: %d %s", method, url, rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// tryRouter performs one request against the live router; safe to call
// from soak goroutines (no t.Fatal).
func tryRouter(method, url, body string) (int, []byte, error) {
	var req *http.Request
	var err error
	if method == http.MethodPost {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func routerDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	code, raw, err := tryRouter(method, url, body)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return code, raw
}

// waitRouter polls /healthz until the predicate holds.
func waitRouter(t *testing.T, routerURL string, timeout time.Duration, want func(status string) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(routerURL + "/healthz")
		if err == nil {
			var doc struct {
				Status string `json:"status"`
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(raw, &doc)
			last = doc.Status
			if want(doc.Status) {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("router never reached wanted health state (last %q)", last)
}

// chaosSoakDuration is the sustained-load window: brief by default, longer
// when CI sets NEGMINE_SOAK.
func chaosSoakDuration() time.Duration {
	if v := os.Getenv("NEGMINE_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 2 * time.Second
}

func TestClusterKillAShardChaos(t *testing.T) {
	if testing.Short() && os.Getenv("NEGMINE_CHAOS") == "" {
		t.Skip("multi-process chaos test skipped in -short (set NEGMINE_CHAOS=1 to force)")
	}
	minedBin, routerBin := binaries(t)
	dir := t.TempDir()
	repPath, taxPath, rep := chaosFixture(t, dir)
	ref := referenceHandler(t, repPath, taxPath)

	const shards = 3
	router := startProc(t, "router", routerBin,
		"-addr", "127.0.0.1:0", "-shards", "3",
		"-heartbeat-ttl", "500ms", "-probe-every", "100ms", "-shard-timeout", "1s")
	routerURL := "http://" + router.addr

	shardArgs := func(k int) []string {
		return []string{
			"-addr", "127.0.0.1:0", "-report", repPath, "-tax", taxPath,
			"-shard", fmt.Sprintf("%d/%d", k, shards),
			"-snapshot-dir", filepath.Join(dir, fmt.Sprintf("snap%d", k)),
			"-cluster-join", routerURL, "-heartbeat", "100ms", "-drain", "2s",
		}
	}
	procs := make([]*proc, shards)
	for k := range procs {
		procs[k] = startProc(t, fmt.Sprintf("shard%d", k), minedBin, shardArgs(k)...)
	}
	waitRouter(t, routerURL, 15*time.Second, func(s string) bool { return s == "ok" })

	// The victim shard is whichever one owns the first mined rule's head
	// item, so a basket with that item is guaranteed to need the dead shard.
	victimItem := rep.Rules[0].Antecedent[0]
	victim := cluster.ShardOfItem(victimItem, shards)
	basketAll := make([]string, 0, len(rep.Rules))
	seen := map[string]bool{}
	for _, r := range rep.Rules {
		if it := r.Antecedent[0]; !seen[it] {
			seen[it] = true
			basketAll = append(basketAll, it)
		}
	}
	scoreBody, _ := json.Marshal(map[string]any{"basket": basketAll})
	rulesURL := "/rules?item=" + victimItem

	// Healthy cluster: merged answers are byte-identical to the unsharded
	// single-node document — the sharding is invisible to clients.
	assertIdentical := func(when string) {
		t.Helper()
		code, got := routerDo(t, http.MethodPost, routerURL+"/score", string(scoreBody))
		want := referenceBody(t, ref, http.MethodPost, "/score", string(scoreBody))
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("%s: merged /score (HTTP %d) diverges from single node:\n got: %s\nwant: %s",
				when, code, got, want)
		}
		code, got = routerDo(t, http.MethodGet, routerURL+rulesURL, "")
		want = referenceBody(t, ref, http.MethodGet, rulesURL, "")
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("%s: merged /rules (HTTP %d) diverges from single node:\n got: %s\nwant: %s",
				when, code, got, want)
		}
	}
	assertIdentical("healthy cluster")

	// Sustained load while the victim dies: every response must be 200 or
	// 206 — graceful partial degradation, never a 5xx.
	var (
		server5xx atomic.Int64
		transport atomic.Int64
		partials  atomic.Int64
		requests  atomic.Int64
		wg        sync.WaitGroup
	)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var code int
				var err error
				if w%2 == 0 {
					code, _, err = tryRouter(http.MethodPost, routerURL+"/score", string(scoreBody))
				} else {
					code, _, err = tryRouter(http.MethodGet, routerURL+rulesURL, "")
				}
				requests.Add(1)
				switch {
				case err != nil:
					// The router itself must stay reachable through the chaos.
					transport.Add(1)
				case code >= 500:
					server5xx.Add(1)
				case code == http.StatusPartialContent:
					partials.Add(1)
				}
			}
		}(w)
	}

	soak := chaosSoakDuration()
	time.Sleep(soak / 4)
	t.Logf("SIGKILL shard %d (%s, owns %q)", victim, procs[victim].addr, victimItem)
	killedAt := time.Now()
	procs[victim].kill()

	// The router must notice within one heartbeat-TTL sweep and degrade.
	waitRouter(t, routerURL, 5*time.Second, func(s string) bool { return s == "degraded" })
	t.Logf("router degraded %v after SIGKILL", time.Since(killedAt))

	time.Sleep(soak / 2)
	close(stop)
	wg.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d responses were 5xx during the outage (want graceful 206s)", n)
	}
	if n := transport.Load(); n > 0 {
		t.Fatalf("%d requests failed to reach the router during the outage", n)
	}
	if partials.Load() == 0 {
		t.Fatal("no partial (206) responses observed while a shard was dead")
	}
	t.Logf("soak: %d requests, %d partial, 0 server errors", requests.Load(), partials.Load())

	// A dead-shard query is honest about what is missing.
	code, raw := routerDo(t, http.MethodPost, routerURL+"/score",
		fmt.Sprintf(`{"basket":[%q]}`, victimItem))
	var partial struct {
		Partial       bool  `json:"partial"`
		MissingShards []int `json:"missingShards"`
	}
	if err := json.Unmarshal(raw, &partial); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusPartialContent || !partial.Partial ||
		len(partial.MissingShards) != 1 || partial.MissingShards[0] != victim {
		t.Fatalf("dead-shard score = %d %s", code, raw)
	}

	// Recovery: the same shard restarts and must boot from its snapshot
	// store (mmap, no re-parse) and rejoin; merged answers converge back to
	// byte-identity with the single-node oracle.
	procs[victim] = startProc(t, fmt.Sprintf("shard%d*", victim), minedBin, shardArgs(victim)...)
	waitRouter(t, routerURL, 15*time.Second, func(s string) bool { return s == "ok" })
	assertIdentical("recovered cluster")

	_, raw = routerDo(t, http.MethodGet, routerURL+"/cluster/status", "")
	var st cluster.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	var recovered *cluster.ReplicaStatus
	for i := range st.Table {
		if st.Table[i].Shard != victim {
			continue
		}
		for j := range st.Table[i].Replicas {
			r := &st.Table[i].Replicas[j]
			if r.Addr == procs[victim].addr {
				recovered = r
			}
		}
	}
	if recovered == nil {
		t.Fatalf("restarted shard %d not in cluster status: %s", victim, raw)
	}
	if recovered.SourceKind != "mmap" {
		t.Fatalf("restarted shard recovered via %q, want mmap (snapshot store)", recovered.SourceKind)
	}
}
